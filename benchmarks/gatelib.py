"""Shared scaffolding for the CI regression gates.

Every ``check_*_regression.py`` script follows the same shape: parse a
fresh report path plus ``--baseline`` (defaulting to the committed
``BENCH_*.json`` at the repo root), load both JSON documents (exit 2 on
bad input), walk dotted paths into them (exit 2 when a key is absent),
print one line per check with an explicit threshold band, and exit 1 on
any failure / print ``PASS`` and exit 0 otherwise.  This module holds
that scaffolding so each gate only states its own checks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = [
    "REPO_ROOT",
    "fail",
    "get_path",
    "load_report_pair",
    "make_parser",
    "throughput_floor_check",
    "verdict",
]


def make_parser(
    doc: str | None, baseline_name: str, threshold: float | None = None
) -> argparse.ArgumentParser:
    """The common gate CLI: ``report`` + ``--baseline`` (+ ``--threshold``).

    ``doc`` is the gate module's docstring (the first line becomes the
    description); ``baseline_name`` the committed report filename at the
    repo root; ``threshold`` (when given) adds the standard cross-run
    band flag with that default.
    """
    parser = argparse.ArgumentParser(
        description=(doc or "").splitlines()[0] if doc else None
    )
    parser.add_argument(
        "report", type=Path, help=f"fresh {baseline_name} to validate"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / baseline_name,
        help=f"committed baseline report (default: repo-root {baseline_name})",
    )
    if threshold is not None:
        parser.add_argument(
            "--threshold",
            type=float,
            default=threshold,
            help=(
                "max tolerated fractional cross-run throughput drop "
                f"(default {threshold})"
            ),
        )
    return parser


def load_report_pair(report_path: Path, baseline_path: Path) -> tuple[dict, dict]:
    """Load the fresh and committed reports; exit 2 on unreadable input."""
    try:
        return (
            json.loads(report_path.read_text()),
            json.loads(baseline_path.read_text()),
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def get_path(report: dict, path: Path, *keys: str):
    """Walk ``keys`` into ``report``; exit 2 naming the missing path."""
    node = report
    try:
        for key in keys:
            node = node[key]
    except (KeyError, TypeError):
        dotted = ".".join(keys)
        print(f"error: {path} has no {dotted}", file=sys.stderr)
        raise SystemExit(2)
    return node


def fail(message: str) -> bool:
    """Print a FAIL line to stderr; returns True (the new failed flag)."""
    print(f"FAIL: {message}", file=sys.stderr)
    return True


def throughput_floor_check(
    label: str, fresh: float, committed: float, threshold: float, unit: str = "/s"
) -> bool:
    """The standard cross-run band: ``fresh`` must stay within
    ``threshold`` of ``committed``.  Prints the band line; returns True
    when the check FAILED."""
    floor = committed * (1.0 - threshold)
    drop = 1.0 - fresh / committed
    print(
        f"{label}: fresh={fresh:,.0f}{unit} committed={committed:,.0f}{unit} "
        f"({'-' if drop > 0 else '+'}{abs(drop):.1%}; floor at "
        f"-{threshold:.0%} = {floor:,.0f}{unit})"
    )
    if fresh < floor:
        return fail(
            f"{label} regressed {drop:.1%} (> {threshold:.0%} threshold)"
        )
    return False


def verdict(failed: bool) -> int:
    """Exit status from the accumulated failed flag (prints PASS)."""
    if failed:
        return 1
    print("PASS")
    return 0
