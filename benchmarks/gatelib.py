"""Shared scaffolding for the CI regression gates.

Every ``check_*_regression.py`` script follows the same shape: parse a
fresh report path plus ``--baseline`` (defaulting to the committed
``BENCH_*.json`` at the repo root), load both JSON documents (exit 2 on
bad input), walk dotted paths into them (exit 2 when a key is absent),
print one line per check with an explicit threshold band, and exit 1 on
any failure / print ``PASS`` and exit 0 otherwise.  This module holds
that scaffolding so each gate only states its own checks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = [
    "REPO_ROOT",
    "compare_to_baseline",
    "fail",
    "get_path",
    "load_report_pair",
    "make_parser",
    "throughput_floor_check",
    "verdict",
]


def make_parser(
    doc: str | None, baseline_name: str, threshold: float | None = None
) -> argparse.ArgumentParser:
    """The common gate CLI: ``report`` + ``--baseline`` (+ ``--threshold``).

    ``doc`` is the gate module's docstring (the first line becomes the
    description); ``baseline_name`` the committed report filename at the
    repo root; ``threshold`` (when given) adds the standard cross-run
    band flag with that default.
    """
    parser = argparse.ArgumentParser(
        description=(doc or "").splitlines()[0] if doc else None
    )
    parser.add_argument(
        "report", type=Path, help=f"fresh {baseline_name} to validate"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / baseline_name,
        help=f"committed baseline report (default: repo-root {baseline_name})",
    )
    if threshold is not None:
        parser.add_argument(
            "--threshold",
            type=float,
            default=threshold,
            help=(
                "max tolerated fractional cross-run throughput drop "
                f"(default {threshold})"
            ),
        )
    return parser


def load_report_pair(report_path: Path, baseline_path: Path) -> tuple[dict, dict]:
    """Load the fresh and committed reports; exit 2 on unreadable input."""
    try:
        return (
            json.loads(report_path.read_text()),
            json.loads(baseline_path.read_text()),
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def get_path(report: dict, path: Path, *keys: str):
    """Walk ``keys`` into ``report``; exit 2 naming the missing path."""
    node = report
    try:
        for key in keys:
            node = node[key]
    except (KeyError, TypeError):
        dotted = ".".join(keys)
        print(f"error: {path} has no {dotted}", file=sys.stderr)
        raise SystemExit(2)
    return node


def fail(message: str) -> bool:
    """Print a FAIL line to stderr; returns True (the new failed flag)."""
    print(f"FAIL: {message}", file=sys.stderr)
    return True


def throughput_floor_check(
    label: str, fresh: float, committed: float, threshold: float, unit: str = "/s"
) -> bool:
    """The standard cross-run band: ``fresh`` must stay within
    ``threshold`` of ``committed``.  Prints the band line; returns True
    when the check FAILED."""
    floor = committed * (1.0 - threshold)
    drop = 1.0 - fresh / committed
    print(
        f"{label}: fresh={fresh:,.0f}{unit} committed={committed:,.0f}{unit} "
        f"({'-' if drop > 0 else '+'}{abs(drop):.1%}; floor at "
        f"-{threshold:.0%} = {floor:,.0f}{unit})"
    )
    if fresh < floor:
        return fail(
            f"{label} regressed {drop:.1%} (> {threshold:.0%} threshold)"
        )
    return False


def compare_to_baseline(
    report: dict,
    baseline: dict,
    *,
    floors: dict[str, float] | None = None,
    label: str = "run-over-run",
    max_rows: int = 10,
) -> bool:
    """Diff the fresh report's embedded ledger entry against the
    committed baseline's (DESIGN.md §15).

    Every ``run_all.py`` section embeds a ``"ledger"`` key — a
    ``repro.observe.ledger.RunEntry`` dict whose metrics are the
    report's numeric scalars — which makes the committed ``BENCH_*``
    trajectory diffable run over run.  This prints the largest relative
    metric deltas (informational), upgrades to a full ``repro diff``
    with bootstrap CIs when both entries carry histograms and ``repro``
    is importable, and gates only on ``floors``: ``{metric: max
    fractional drop}`` pairs where ``fresh < committed * (1 - drop)``
    fails.  Reports without an embedded entry (pre-§15 baselines) are
    skipped without failing, so the first run against an old committed
    baseline stays green.  Returns True when a floor check FAILED.
    """
    fresh_entry = report.get("ledger")
    committed_entry = baseline.get("ledger")
    if not fresh_entry or not committed_entry:
        missing = "fresh report" if not fresh_entry else "baseline"
        print(f"{label}: no ledger entry in {missing}; skipping diff")
        return False
    fresh = fresh_entry.get("artifacts", {}).get("metrics", {})
    committed = committed_entry.get("artifacts", {}).get("metrics", {})

    deltas = []
    for name in sorted(set(fresh) & set(committed)):
        a, b = float(fresh[name]), float(committed[name])
        scale = max(abs(a), abs(b))
        if scale > 0.0 and a != b:
            deltas.append((abs(a - b) / scale, name, a, b))
    deltas.sort(reverse=True)
    shown = deltas[:max_rows]
    if shown:
        print(f"{label}: top metric deltas vs committed baseline:")
        for rel, name, a, b in shown:
            print(f"  {name}: {a:g} vs {b:g} ({(a - b) / max(abs(b), 1e-12):+.1%})")
        if len(deltas) > len(shown):
            print(f"  ... and {len(deltas) - len(shown)} more changed metrics")
    else:
        print(f"{label}: no metric deltas vs committed baseline")

    try:  # optional upgrade: full diff with CIs over stored histograms
        from repro.observe.diff import diff_runs
        from repro.observe.ledger import RunEntry

        entry_a = RunEntry.from_dict(fresh_entry)
        entry_b = RunEntry.from_dict(committed_entry)
        shared = set(entry_a.artifacts.histograms) & set(
            entry_b.artifacts.histograms
        )
        if "latency_ms" in shared:
            diff = diff_runs(entry_a, entry_b)
            for q in diff.quantiles:
                print(
                    f"  {label} p{q.phi * 100:g}: {q.delta_ms:+.4g} ms "
                    f"CI [{q.ci_lo:+.4g}, {q.ci_hi:+.4g}] "
                    f"{'SIGNIFICANT' if q.significant else 'ns'}"
                )
    except (ImportError, KeyError):
        pass  # gates must work without repro on the path / partial entries

    failed = False
    for metric, drop in (floors or {}).items():
        if metric not in fresh or metric not in committed:
            print(f"{label}: metric {metric} missing on one side; floor skipped")
            continue
        failed |= throughput_floor_check(
            f"{label} {metric}",
            float(fresh[metric]),
            float(committed[metric]),
            drop,
            unit="",
        )
    return failed


def verdict(failed: bool) -> int:
    """Exit status from the accumulated failed flag (prints PASS)."""
    if failed:
        return 1
    print("PASS")
    return 0
