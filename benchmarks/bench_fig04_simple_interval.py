"""Figure 4: the fixed-interval incremental-parallelism strawman.

99th-percentile latency of SEQ, FIX-4, and Simp-20/100/500 ms: no
fixed interval wins across the whole load spectrum, motivating FM.
"""

from __future__ import annotations

from repro.experiments.figures import fig4_simple_interval

from conftest import run_figure


def test_fig04_simple_interval(benchmark, scale, save_figure):
    """Regenerate Figure 4."""
    result = run_figure(benchmark, fig4_simple_interval, scale, save_figure)
    assert result.tables
