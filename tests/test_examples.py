"""Smoke tests for the example scripts.

Importing each example compiles it and resolves every API reference —
catching drift between the examples and the library without paying
their full runtime.  One fast example runs end-to-end under the slow
marker.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestExamplesImport:
    def test_examples_exist(self):
        names = {p.stem for p in ALL_EXAMPLES}
        assert "quickstart" in names
        assert len(names) >= 5

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_imports_and_has_main(self, path: Path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} needs main()"
        assert module.__doc__, f"{path.stem} needs a docstring"


@pytest.mark.slow
class TestExampleExecution:
    def test_live_runtime_example_runs(self, capsys):
        """The live-runtime demo is the fastest end-to-end example
        (~5 s of mostly sleeping) and exercises a whole subsystem."""
        module = _load(EXAMPLES_DIR / "live_runtime.py")
        module.main()
        out = capsys.readouterr().out
        assert "few-to-many" in out
        assert "p99" in out
