"""The windowed time-series recorder, cross-shard merge, and exporters.

The bit-identity tests are the contract the live plane's sharded
aggregation stands on: per-window snapshots merged in shard-index
order reproduce identical :meth:`WindowSnapshot.state` tuples whether
the shard streams were produced in this process or in worker
processes (the ``repro.parallel --workers N`` path).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.observe.timeseries import (
    TimeseriesRecorder,
    TimeseriesTailer,
    WindowSnapshot,
    merge_window_streams,
    read_timeseries_jsonl,
    render_prometheus,
    write_timeseries_jsonl,
)
from repro.telemetry import MetricsRegistry


def _shard_stream(shard: int) -> list[dict]:
    """One shard's deterministic window stream, as JSON dicts.

    Module-level so worker processes can import it by reference; the
    dict form crosses the process boundary at full fidelity
    (:meth:`WindowSnapshot.to_dict` keeps every histogram bucket).
    """
    registry = MetricsRegistry()
    recorder = TimeseriesRecorder(registry, window_ms=100.0)
    for window in range(4):
        for i in range(6):
            registry.counter("completions").inc()
            registry.histogram("latency_ms").record(
                1.0 + 13.7 * shard + 3.1 * window + 0.71 * i
            )
        registry.gauge("queue_depth").set(float(shard + window))
        recorder.snapshot((window + 1) * 100.0 - 50.0)
    return [w.to_dict() for w in recorder.windows()]


class TestRecorder:
    def test_windows_hold_deltas_not_cumulatives(self):
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=100.0)
        registry.counter("arrivals").inc(5)
        recorder.snapshot(50.0)
        registry.counter("arrivals").inc(2)
        second = recorder.snapshot(150.0)
        assert second.counters["arrivals"] == 2
        assert recorder.cumulative.counters["arrivals"] == 7

    def test_zero_counters_and_empty_histograms_dropped(self):
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=100.0)
        registry.counter("arrivals").inc()
        registry.histogram("latency_ms")  # created, never recorded
        window = recorder.snapshot(50.0)
        registry.counter("sheds")  # exists but stays zero
        window2 = recorder.snapshot(150.0)
        assert "latency_ms" not in window.histograms
        assert window2.counters == {}

    def test_ring_is_bounded(self):
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=10.0, capacity=3)
        for i in range(8):
            registry.counter("ticks").inc()
            recorder.snapshot(10.0 * i + 5.0)
        windows = recorder.windows()
        assert len(windows) == 3
        assert [w.index for w in windows] == [5, 6, 7]

    def test_snapshots_must_advance(self):
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=100.0)
        recorder.snapshot(50.0)
        with pytest.raises(ConfigurationError):
            recorder.snapshot(60.0)

    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(registry, window_ms=0.0)
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(registry, window_ms=10.0, capacity=0)


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        streams = [
            [WindowSnapshot.from_dict(d) for d in _shard_stream(shard)]
            for shard in range(3)
        ]
        merged = merge_window_streams(streams)
        assert [w.index for w in merged] == [0, 1, 2, 3]
        assert merged[0].counters["completions"] == 18
        assert merged[0].histograms["latency_ms"].count == 18
        # Gauges merge by max (exact in floats).
        assert merged[3].gauges["queue_depth"] == 5.0

    def test_mismatched_window_indexes_refuse_to_merge(self):
        a = WindowSnapshot(index=1, start_ms=100.0, end_ms=200.0)
        b = WindowSnapshot(index=2, start_ms=200.0, end_ms=300.0)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_is_bit_identical_across_processes(self):
        """The acceptance criterion: shard streams produced by worker
        processes merge to the same state() tuples as streams produced
        serially in this process."""
        serial = [
            [WindowSnapshot.from_dict(d) for d in _shard_stream(s)]
            for s in range(3)
        ]
        with ProcessPoolExecutor(max_workers=2) as pool:
            shipped = [
                [WindowSnapshot.from_dict(d) for d in dicts]
                for dicts in pool.map(_shard_stream, range(3))
            ]
        merged_serial = merge_window_streams(serial)
        merged_shipped = merge_window_streams(shipped)
        assert [w.state() for w in merged_serial] == [
            w.state() for w in merged_shipped
        ]

    def test_fold_order_is_the_contract(self):
        """Reversing shard order may change the float sum — which is
        exactly why merge_window_streams requires shard-index order."""
        streams = [
            [WindowSnapshot.from_dict(d) for d in _shard_stream(s)]
            for s in range(3)
        ]
        forward = merge_window_streams(streams)
        backward = merge_window_streams(list(reversed(streams)))
        # Counts always agree; the full state may not (float sums).
        assert [w.counters for w in forward] == [w.counters for w in backward]


class TestPrometheus:
    def test_registry_exposition(self):
        registry = MetricsRegistry()
        registry.counter("sim.completions").inc(7)
        registry.gauge("sim.queue_depth").set(3.0)
        registry.histogram("sim.latency_ms").record_many([5.0, 10.0, 20.0])
        text = render_prometheus(registry)
        assert "# TYPE repro_sim_completions counter" in text
        assert "repro_sim_completions 7" in text
        assert "# TYPE repro_sim_queue_depth gauge" in text
        assert "# TYPE repro_sim_latency_ms summary" in text
        assert 'repro_sim_latency_ms{quantile="0.99"}' in text
        assert "repro_sim_latency_ms_count 3" in text

    def test_timestamped_exposition(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        text = render_prometheus(registry, at_ms=1234.9)
        assert "repro_x 1 1234" in text

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        assert render_prometheus(registry) == render_prometheus(registry)


class TestJsonl:
    def test_round_trip_preserves_state(self, tmp_path):
        windows = [
            WindowSnapshot.from_dict(d) for d in _shard_stream(1)
        ]
        path = tmp_path / "ts.jsonl"
        write_timeseries_jsonl(path, windows)
        back = read_timeseries_jsonl(path)
        assert [w.state() for w in back] == [w.state() for w in windows]

    def test_append_mode_tails(self, tmp_path):
        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(0)]
        path = tmp_path / "ts.jsonl"
        write_timeseries_jsonl(path, windows[:2])
        write_timeseries_jsonl(path, windows[2:], append=True)
        assert len(read_timeseries_jsonl(path)) == len(windows)

    def test_gzip_read(self, tmp_path):
        import gzip

        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(2)]
        plain = tmp_path / "ts.jsonl"
        write_timeseries_jsonl(plain, windows)
        gz = tmp_path / "ts.jsonl.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert [w.state() for w in read_timeseries_jsonl(gz)] == [
            w.state() for w in windows
        ]


class TestTailer:
    """Incremental tailing: a live writer may leave torn last lines."""

    def test_tails_completed_lines(self, tmp_path):
        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(0)]
        path = tmp_path / "ts.jsonl"
        tailer = TimeseriesTailer(path)
        assert tailer.poll() == []  # file does not exist yet
        write_timeseries_jsonl(path, windows[:2])
        assert [w.index for w in tailer.poll()] == [0, 1]
        write_timeseries_jsonl(path, windows[2:], append=True)
        assert [w.index for w in tailer.poll()] == [2, 3]
        assert [w.state() for w in tailer.windows] == [
            w.state() for w in windows
        ]

    def test_split_record_buffered_across_polls(self, tmp_path):
        """A record written in two OS writes parses once terminated."""
        import json

        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(1)]
        line = json.dumps(windows[0].to_dict(), sort_keys=True) + "\n"
        path = tmp_path / "ts.jsonl"
        tailer = TimeseriesTailer(path)
        # First half of the record: mid-write poll must not choke on
        # the torn JSON, and must not emit anything.
        path.write_bytes(line[: len(line) // 2].encode("utf-8"))
        assert tailer.poll() == []
        # Writer finishes the line: the buffered fragment completes.
        with path.open("ab") as handle:
            handle.write(line[len(line) // 2 :].encode("utf-8"))
        fresh = tailer.poll()
        assert len(fresh) == 1
        assert fresh[0].state() == windows[0].state()

    def test_unterminated_tail_held_until_newline(self, tmp_path):
        import json

        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(2)]
        lines = [json.dumps(w.to_dict(), sort_keys=True) for w in windows]
        path = tmp_path / "ts.jsonl"
        # A complete first record plus a complete-but-unterminated
        # second: only the newline-terminated one is consumed.
        path.write_text(lines[0] + "\n" + lines[1])
        tailer = TimeseriesTailer(path)
        assert [w.index for w in tailer.poll()] == [windows[0].index]
        with path.open("a") as handle:
            handle.write("\n")
        assert [w.index for w in tailer.poll()] == [windows[1].index]

    def test_truncation_resets(self, tmp_path):
        windows = [WindowSnapshot.from_dict(d) for d in _shard_stream(0)]
        path = tmp_path / "ts.jsonl"
        write_timeseries_jsonl(path, windows)
        tailer = TimeseriesTailer(path)
        assert len(tailer.poll()) == len(windows)
        # Rotation: the file restarts smaller; the tailer re-reads it.
        write_timeseries_jsonl(path, windows[:1])
        assert [w.index for w in tailer.poll()] == [windows[0].index]
        assert len(tailer.windows) == 1
