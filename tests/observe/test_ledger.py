"""The run ledger: cards, artifacts, append-only store, entry builders.

The determinism tests are the contract ``repro diff`` stands on: an
entry built twice from identical (config, seed) runs must serialize
byte-identically (``stamp=False`` keeps wall clocks and git out), and
a JSONL round-trip must restore every histogram to bit-identical
:meth:`LogHistogram.state`.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_policy, stream_policy
from repro.experiments.tables import lucene_table
from repro.observe.ledger import (
    QUANTILE_GRID,
    RunEntry,
    RunLedger,
    config_fingerprint,
    entry_from_result,
    entry_from_summary,
    workload_digest,
)
from repro.experiments.config import TINY as TEST_SCALE
from repro.schedulers import FMScheduler
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.workloads import lucene as lucene_mod


def _run(seed: int = 321):
    table = lucene_table(TEST_SCALE)
    workload = lucene_mod.lucene_workload(profile_size=TEST_SCALE.profile_size)
    result = run_policy(
        FMScheduler(table),
        workload,
        rps=45.0,
        cores=lucene_mod.CORES,
        num_requests=TEST_SCALE.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        seed=seed,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )
    return result, workload


@pytest.fixture(scope="module")
def run_and_workload():
    return _run()


@pytest.fixture(scope="module")
def entry(run_and_workload):
    result, workload = run_and_workload
    return entry_from_result(
        "fm@45",
        result,
        config={"policy": "FM", "rps": 45.0, "seed": 321},
        seed=321,
        scheduler="FM",
        workload=workload,
        scale=TEST_SCALE.name,
    )


class TestFingerprints:
    def test_fingerprint_ignores_key_order(self):
        a = config_fingerprint({"rps": 45.0, "policy": "FM"})
        b = config_fingerprint({"policy": "FM", "rps": 45.0})
        assert a == b
        assert len(a) == 12

    def test_fingerprint_separates_values(self):
        assert config_fingerprint({"rps": 45.0}) != config_fingerprint(
            {"rps": 47.0}
        )

    def test_workload_digest_is_stable(self, run_and_workload):
        _, workload = run_and_workload
        assert workload_digest(workload) == workload_digest(workload)


class TestEntryFromResult:
    def test_latency_and_component_histograms(self, entry, run_and_workload):
        result, _ = run_and_workload
        names = set(entry.artifacts.histograms)
        assert "latency_ms" in names
        for component in ATTRIBUTION_COMPONENTS:
            assert f"attr.{component}" in names
        restored = entry.artifacts.histogram("latency_ms")
        assert restored.count == len(result.records)
        # The stored quantile point estimates match the histogram.
        for phi in QUANTILE_GRID:
            key = f"p{phi * 100:g}_ms".replace(".", "_")
            assert entry.artifacts.metrics[key] == pytest.approx(
                restored.percentile(phi)
            )

    def test_attribution_summary_stored(self, entry):
        tail = entry.artifacts.attribution["tail"]
        for component in ATTRIBUTION_COMPONENTS:
            assert component in tail

    def test_unstamped_entries_are_byte_deterministic(self, run_and_workload):
        result, workload = run_and_workload
        build = lambda: entry_from_result(  # noqa: E731
            "fm@45",
            result,
            config={"policy": "FM", "rps": 45.0, "seed": 321},
            seed=321,
            scheduler="FM",
            workload=workload,
            scale=TEST_SCALE.name,
        )
        a, b = build().to_dict(), build().to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["card"]["git_rev"] == ""
        assert a["card"]["created_s"] == 0.0

    def test_round_trip_restores_bit_identical_state(self, entry):
        clone = RunEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        for name in entry.artifacts.histograms:
            assert (
                clone.artifacts.histogram(name).state()
                == entry.artifacts.histogram(name).state()
            )
        assert clone.card == entry.card


class TestEntryFromSummary:
    def test_streamed_runs_are_ledgerable(self):
        workload = lucene_mod.lucene_workload(
            profile_size=TEST_SCALE.profile_size
        )
        summary = stream_policy(
            FMScheduler(lucene_table(TEST_SCALE)),
            workload,
            rps=45.0,
            cores=lucene_mod.CORES,
            num_requests=TEST_SCALE.num_requests,
            quantum_ms=lucene_mod.QUANTUM_MS,
            seed=321,
            spin_fraction=lucene_mod.SPIN_FRACTION,
        )
        entry = entry_from_summary(
            "fm@45:stream",
            summary,
            config={"policy": "FM", "rps": 45.0},
            seed=321,
        )
        assert entry.artifacts.histogram("latency_ms").count == summary.count
        # No per-request attribution on the streamed path.
        assert "attr.queue_ms" not in entry.artifacts.histograms


class TestLedgerStore:
    def test_append_assigns_positional_ids(self, tmp_path, entry):
        ledger = RunLedger(tmp_path / "runs")
        assert ledger.append(entry) == "fm@45#0"
        assert ledger.append(entry) == "fm@45#1"
        assert len(ledger.entries()) == 2

    def test_get_by_id_position_and_name(self, tmp_path, entry):
        ledger = RunLedger(tmp_path / "runs")
        first = ledger.append(entry)
        second = ledger.append(entry)
        assert ledger.get(first).run_id == first
        assert ledger.get("0").run_id == first
        assert ledger.get("-1").run_id == second
        # A bare name resolves to the LATEST entry with that name.
        assert ledger.get("fm@45").run_id == second

    def test_get_round_trips_artifacts(self, tmp_path, entry):
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.append(entry)
        back = ledger.get(run_id)
        assert (
            back.artifacts.histogram("latency_ms").state()
            == entry.artifacts.histogram("latency_ms").state()
        )

    def test_index_written_alongside(self, tmp_path, entry):
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.append(entry)
        index = json.loads(ledger.index_path.read_text())
        assert index[run_id]["line"] == 0
        assert index[run_id]["seed"] == entry.card.seed

    def test_errors(self, tmp_path, entry):
        ledger = RunLedger(tmp_path / "runs")
        with pytest.raises(ConfigurationError):
            ledger.get("anything")  # empty ledger
        ledger.append(entry)
        with pytest.raises(ConfigurationError):
            ledger.get("no-such-run")
        with pytest.raises(ConfigurationError):
            ledger.get("7")  # out of range
        with pytest.raises(ConfigurationError):
            entry.artifacts.histogram("no-such-histogram")
