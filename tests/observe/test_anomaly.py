"""The deterministic changepoint detector."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.observe.anomaly import ChangepointDetector


def _feed(detector, signal, values, start=0):
    flags = []
    for i, value in enumerate(values):
        flag = detector.observe(signal, start + i, value)
        if flag is not None:
            flags.append(flag)
    return flags


class TestChangepoints:
    def test_step_up_is_flagged_once(self):
        detector = ChangepointDetector(warmup=4, threshold=4.0)
        values = [10.0, 10.2, 9.8, 10.1, 10.0, 9.9] + [50.0] * 6
        flags = _feed(detector, "p99_ms", values)
        assert len(flags) == 1
        assert flags[0].window == 6  # the first 50.0
        assert flags[0].direction == 1
        assert flags[0].z_score >= 4.0

    def test_recovery_is_flagged_downward(self):
        detector = ChangepointDetector(warmup=4, threshold=4.0)
        values = [10.0, 10.1, 9.9, 10.0, 10.05] + [50.0] * 6 + [10.0] * 3
        flags = _feed(detector, "p99_ms", values)
        assert [f.direction for f in flags] == [1, -1]

    def test_stationary_noise_stays_quiet(self):
        detector = ChangepointDetector(warmup=5, threshold=4.0)
        values = [100.0 + (i % 7) for i in range(40)]
        assert _feed(detector, "p99_ms", values) == []

    def test_nan_is_skipped_entirely(self):
        detector = ChangepointDetector(warmup=3, threshold=4.0)
        values = [5.0, math.nan, 5.1, math.nan, 4.9, 5.0, 80.0]
        flags = _feed(detector, "burn", values)
        assert len(flags) == 1
        assert flags[0].window == 6

    def test_signals_are_independent(self):
        detector = ChangepointDetector(warmup=3, threshold=4.0)
        _feed(detector, "a", [1.0, 1.1, 0.9, 1.0])
        flags = _feed(detector, "b", [100.0] * 4 + [1.0])
        assert len(flags) == 1
        assert flags[0].signal == "b"

    def test_cold_start_never_flags(self):
        detector = ChangepointDetector(warmup=5, threshold=4.0)
        assert _feed(detector, "x", [1.0, 1e9, 1.0, 1e9]) == []

    def test_constant_baseline_uses_relative_floor(self):
        """A perfectly flat baseline must not turn float dust into an
        infinite z-score."""
        detector = ChangepointDetector(warmup=4, threshold=4.0, min_rel_std=0.05)
        values = [100.0] * 8 + [100.0001]
        assert _feed(detector, "x", values) == []

    def test_determinism(self):
        values = [float((i * 37) % 11) for i in range(30)] + [500.0] * 3
        runs = []
        for _ in range(2):
            detector = ChangepointDetector(warmup=4, threshold=4.0)
            flags = _feed(detector, "x", values)
            runs.append([(f.window, f.direction, f.z_score) for f in flags])
        assert runs[0] == runs[1] != []

    def test_reset_forgets_everything(self):
        detector = ChangepointDetector(warmup=3, threshold=4.0)
        _feed(detector, "x", [1.0, 1.0, 1.0, 50.0])
        assert detector.flags
        detector.reset()
        assert detector.flags == []
        assert _feed(detector, "x", [99.0, 99.0]) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChangepointDetector(warmup=1)
        with pytest.raises(ConfigurationError):
            ChangepointDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            ChangepointDetector(min_rel_std=-0.1)
