"""The ``repro top`` CLI: replay and follow modes, gzip ingestion.

Exercises the dashboard end to end through ``main`` the way the CI
smoke job does — replay a traced run (plain and gzipped), follow a
window-snapshot stream for one frame, and check the error paths exit 2
rather than traceback.
"""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro.observe.analyze import load_trace
from repro.observe.live import LivePlane, replay_spans
from repro.observe.top import main as top_main
from repro.observe.timeseries import (
    TimeseriesRecorder,
    write_timeseries_jsonl,
)
from repro.schedulers import FMScheduler
from repro.sim.engine import simulate
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.export import write_chrome_trace, write_spans_jsonl
from repro.workloads.arrivals import PoissonProcess


@pytest.fixture
def traced(tmp_path, tiny_workload, small_table):
    telemetry = Telemetry()
    rng = np.random.default_rng(31)
    arrivals = tiny_workload.arrivals(120, PoissonProcess(250.0), rng)
    simulate(arrivals, FMScheduler(small_table), cores=4, telemetry=telemetry)
    path = tmp_path / "trace.jsonl"
    write_spans_jsonl(path, telemetry.tracer.spans)
    return telemetry, path


class TestReplayMode:
    def test_text_dashboard(self, traced, capsys):
        _, path = traced
        assert top_main(["--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "attribution" in out
        assert "bar legend" in out

    def test_json_payload(self, traced, capsys):
        _, path = traced
        assert top_main(["--replay", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"windows", "attribution_totals_ms", "events"}
        assert sum(w["count"] for w in payload["windows"]) > 0
        assert "service_ms" in payload["attribution_totals_ms"]

    def test_gzip_trace_matches_plain(self, traced, capsys):
        telemetry, path = traced
        gz = path.with_suffix(".jsonl.gz")
        gz.write_bytes(gzip.compress(path.read_bytes()))
        assert top_main(["--replay", str(gz), "--json"]) == 0
        from_gz = json.loads(capsys.readouterr().out)
        assert top_main(["--replay", str(path), "--json"]) == 0
        from_plain = json.loads(capsys.readouterr().out)
        assert from_gz == from_plain

    def test_window_flag_changes_partition(self, traced, capsys):
        _, path = traced
        assert top_main(["--replay", str(path), "--window", "50", "--json"]) == 0
        fine = json.loads(capsys.readouterr().out)
        assert top_main(["--replay", str(path), "--window", "400", "--json"]) == 0
        coarse = json.loads(capsys.readouterr().out)
        assert len(fine["windows"]) > len(coarse["windows"])
        # The partition changes; the attribution totals do not.
        for component, value in fine["attribution_totals_ms"].items():
            assert coarse["attribution_totals_ms"][component] == pytest.approx(
                value, abs=1e-9
            )


class TestFollowMode:
    def _stream(self, tmp_path):
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=100.0)
        for window in range(3):
            registry.counter("runtime.completions").inc(4)
            registry.histogram("runtime.latency_ms").record_many(
                [5.0 + window, 10.0 + window]
            )
            recorder.snapshot((window + 1) * 100.0 - 50.0)
        path = tmp_path / "ts.jsonl"
        write_timeseries_jsonl(path, recorder.windows())
        return path

    def test_single_frame(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        assert top_main(["--follow", str(path), "--frames", "1"]) == 0
        out = capsys.readouterr().out
        assert "latency p99 ms" in out
        assert "runtime.completions=4" in out

    def test_json_frames_emit_each_window_once(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        assert (
            top_main(
                [
                    "--follow",
                    str(path),
                    "--frames",
                    "2",
                    "--interval",
                    "0.01",
                    "--json",
                ]
            )
            == 0
        )
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        # Frame 1 prints all three windows; frame 2 sees nothing new.
        assert len(lines) == 1
        assert [w["index"] for w in json.loads(lines[0])] == [0, 1, 2]

    def test_missing_stream_renders_empty(self, tmp_path, capsys):
        path = tmp_path / "absent.jsonl"
        assert top_main(["--follow", str(path), "--frames", "1"]) == 0
        assert "latency p99 ms" in capsys.readouterr().out

    def test_torn_last_line_does_not_crash_follow(self, tmp_path, capsys):
        """A writer caught mid-``write()`` leaves half a JSON record;
        the follow loop must render the complete windows and pick up
        the torn one on a later frame, once terminated."""
        path = self._stream(tmp_path)
        whole = path.read_text().splitlines()
        torn = json.dumps({"index": 3, "start_ms": 300.0})[: 20]
        path.write_text("\n".join(whole) + "\n" + torn)
        assert (
            top_main(
                ["--follow", str(path), "--frames", "2", "--interval", "0.01",
                 "--json"]
            )
            == 0
        )
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert [w["index"] for w in json.loads(lines[0])] == [0, 1, 2]


class TestErrors:
    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert top_main(["--replay", str(tmp_path / "nope.json")]) == 2
        assert "repro top:" in capsys.readouterr().out

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert top_main(["--replay", str(empty)]) == 2

    def test_source_is_required_and_exclusive(self, traced):
        _, path = traced
        with pytest.raises(SystemExit):
            top_main([])
        with pytest.raises(SystemExit):
            top_main(["--replay", str(path), "--follow", str(path)])


class TestCliDispatch:
    def test_repro_top_routes_through_cli(self, traced, capsys):
        from repro.cli import main as cli_main

        _, path = traced
        assert cli_main(["top", "--replay", str(path)]) == 0
        assert "attribution" in capsys.readouterr().out


class TestGzipIngestion:
    """Satellite: load_trace reads .json.gz / .jsonl.gz transparently."""

    def test_chrome_trace_gz(self, tmp_path, traced):
        telemetry, _ = traced
        plain = tmp_path / "trace.json"
        write_chrome_trace(plain, telemetry)
        gz = tmp_path / "trace.json.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        a = load_trace(plain)
        b = load_trace(gz)
        assert len(a.spans) == len(b.spans) == len(telemetry.tracer.spans)

    def test_replay_equivalence_through_gzip(self, traced):
        telemetry, path = traced
        gz = path.with_suffix(".jsonl.gz")
        gz.write_bytes(gzip.compress(path.read_bytes()))
        direct = replay_spans(telemetry.tracer.spans)
        loaded = replay_spans(load_trace(gz).spans)
        assert [w.to_dict() for w in direct.windows()] == [
            w.to_dict() for w in loaded.windows()
        ]

    def test_plane_type_sanity(self, traced):
        telemetry, _ = traced
        plane = replay_spans(telemetry.tracer.spans)
        assert isinstance(plane, LivePlane)
