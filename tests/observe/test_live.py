"""The live plane: windowing, exemplars, events, engine wiring, replay.

The replay-equivalence tests are the PR's headline contract: a plane
attached to a live engine run and a plane replayed from that run's
trace see the same windows, and ``repro top --replay``'s attribution
totals match ``repro analyze`` to 1e-6 ms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observe.analyze import analyze_spans
from repro.observe.anomaly import ChangepointDetector
from repro.observe.live import LivePlane, events_from_spans, replay_spans
from repro.observe.slo import SLOMonitor, SLOTarget
from repro.schedulers import FixedScheduler, FMScheduler
from repro.sim.engine import simulate
from repro.telemetry import Telemetry
from repro.workloads.arrivals import PoissonProcess


def _observe_n(plane, n, window_ms=50.0, latency=10.0):
    for i in range(n):
        plane.observe(
            at_ms=i * window_ms / 4,
            latency_ms=latency,
            components={"queue_ms": 2.0, "service_ms": latency - 2.0},
            rid=i,
        )


class TestWindowing:
    def test_completions_partition_into_windows(self):
        plane = LivePlane(window_ms=50.0)
        _observe_n(plane, 20)
        plane.flush(20 * 12.5 + 50.0)
        windows = plane.windows()
        assert sum(w.count for w in windows) == 20
        assert [w.index for w in windows] == sorted(w.index for w in windows)

    def test_component_sums_are_additive(self):
        plane = LivePlane(window_ms=50.0)
        _observe_n(plane, 16, latency=8.0)
        plane.flush(1000.0)
        totals = plane.attribution_totals()
        assert totals["queue_ms"] == pytest.approx(32.0)
        assert totals["service_ms"] == pytest.approx(96.0)

    def test_window_p99_comes_from_the_slice(self):
        plane = LivePlane(window_ms=1000.0)
        for i in range(100):
            plane.observe(at_ms=float(i), latency_ms=1.0 + i)
        plane.flush(1000.0)
        (window,) = plane.windows()
        assert window.p99_ms == pytest.approx(100.0, rel=0.05)

    def test_ring_is_bounded(self):
        plane = LivePlane(window_ms=10.0, capacity=4)
        for i in range(200):
            plane.observe(at_ms=float(i), latency_ms=1.0)
        plane.flush(300.0)
        assert len(plane.windows()) == 4

    def test_out_of_order_annotation_does_not_roll_back(self):
        plane = LivePlane(window_ms=50.0)
        plane.observe(at_ms=120.0, latency_ms=1.0)
        event = plane.annotate(60.0, "fault", fault="stall")
        assert event.window == 1  # indexed where it happened

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LivePlane(window_ms=0.0)
        with pytest.raises(ConfigurationError):
            LivePlane(capacity=0)
        with pytest.raises(ConfigurationError):
            LivePlane(exemplars=-1)


class TestExemplars:
    def test_worst_k_survive(self):
        plane = LivePlane(window_ms=1000.0, exemplars=3)
        latencies = [5.0, 90.0, 12.0, 300.0, 7.0, 150.0]
        for i, latency in enumerate(latencies):
            plane.observe(at_ms=float(i), latency_ms=latency, rid=i)
        plane.flush(1000.0)
        (window,) = plane.windows()
        assert [e.latency_ms for e in window.exemplars] == [300.0, 150.0, 90.0]
        assert [e.rid for e in window.exemplars] == [3, 5, 1]

    def test_exemplar_links_components(self):
        plane = LivePlane(window_ms=1000.0, exemplars=1)
        plane.observe(
            at_ms=1.0,
            latency_ms=50.0,
            components={"queue_ms": 40.0, "service_ms": 10.0},
            rid=7,
        )
        plane.flush(1000.0)
        (window,) = plane.windows()
        assert window.exemplars[0].dominant_component() == "queue_ms"


class TestEventsAndAnomalies:
    def test_mode_transition_updates_window_mode(self):
        plane = LivePlane(window_ms=50.0)
        plane.observe(at_ms=10.0, latency_ms=1.0)
        plane.annotate(60.0, "mode_transition", from_mode="eager", to_mode="steady")
        plane.observe(at_ms=110.0, latency_ms=1.0)
        plane.flush(500.0)
        windows = plane.windows()
        assert windows[0].mode == ""
        assert windows[-1].mode == "steady"

    def test_latency_step_raises_anomaly_event(self):
        plane = LivePlane(
            window_ms=10.0,
            detector=ChangepointDetector(warmup=4, threshold=4.0),
        )
        for window in range(12):
            latency = 5.0 if window < 8 else 80.0
            for i in range(5):
                plane.observe(
                    at_ms=window * 10.0 + i, latency_ms=latency + 0.1 * i
                )
        plane.flush(200.0)
        anomalies = plane.anomalies()
        assert anomalies
        assert anomalies[0].detail["signal"] == "p99_ms"
        assert anomalies[0].window == 8
        # The flag also lands inside its window's event list.
        flagged = next(w for w in plane.windows() if w.index == 8)
        assert any(e.kind == "anomaly" for e in flagged.events)

    def test_slo_breach_column(self):
        slo = SLOMonitor(
            SLOTarget(percentile=0.5, threshold_ms=10.0),
            short_window_ms=100.0,
            long_window_ms=200.0,
            min_samples=3,
        )
        plane = LivePlane(window_ms=50.0, slo=slo)
        for i in range(20):
            plane.observe(at_ms=10.0 * i, latency_ms=50.0)
        plane.flush(400.0)
        assert any(w.breached for w in plane.windows())
        assert all(
            w.burn_rate >= 1.0 for w in plane.windows() if w.breached
        )


class TestEngineWiring:
    def _arrivals(self, tiny_workload, n=120, rps=200.0, seed=11):
        rng = np.random.default_rng(seed)
        return tiny_workload.arrivals(n, PoissonProcess(rps), rng)

    def test_live_plane_sees_every_completion(self, tiny_workload):
        plane = LivePlane(window_ms=100.0, capacity=4096)
        result = simulate(
            self._arrivals(tiny_workload),
            FixedScheduler(2),
            cores=4,
            live=plane,
        )
        assert sum(w.count for w in plane.windows()) == len(result.records)
        totals = plane.attribution_totals()
        for component in ("queue_ms", "service_ms", "contention_ms"):
            want = sum(r.attribution()[component] for r in result.records)
            assert totals.get(component, 0.0) == pytest.approx(want, abs=1e-9)

    def test_faults_become_events(self, tiny_workload):
        from repro.faults.plan import CoreFault, FaultPlan, StallFault

        plan = FaultPlan(
            core_faults=[CoreFault(time_ms=50.0, cores=2, duration_ms=100.0)],
            stalls=[StallFault(time_ms=80.0, duration_ms=40.0)],
        )
        plane = LivePlane(window_ms=100.0, capacity=4096)
        simulate(
            self._arrivals(tiny_workload),
            FixedScheduler(2),
            cores=4,
            fault_plan=plan,
            live=plane,
        )
        kinds = {e.detail.get("fault") for e in plane.events if e.kind == "fault"}
        assert "core_loss" in kinds
        assert "core_restore" in kinds

    def test_plane_does_not_perturb_the_simulation(self, tiny_workload):
        """Bit-identical results with and without a plane attached."""
        bare = simulate(self._arrivals(tiny_workload), FixedScheduler(2), cores=4)
        plane = LivePlane(window_ms=100.0, capacity=4096)
        observed = simulate(
            self._arrivals(tiny_workload), FixedScheduler(2), cores=4, live=plane
        )
        assert [r.finish_ms for r in bare.records] == [
            r.finish_ms for r in observed.records
        ]


class TestReplay:
    def _traced_run(self, tiny_workload, small_table):
        telemetry = Telemetry()
        rng = np.random.default_rng(23)
        arrivals = tiny_workload.arrivals(150, PoissonProcess(250.0), rng)
        plane = LivePlane(window_ms=100.0, capacity=4096)
        result = simulate(
            arrivals,
            FMScheduler(small_table),
            cores=4,
            telemetry=telemetry,
            live=plane,
        )
        return telemetry, plane, result

    def test_replay_matches_live_windows(self, tiny_workload, small_table):
        telemetry, live, _ = self._traced_run(tiny_workload, small_table)
        replayed = replay_spans(telemetry.tracer.spans, window_ms=100.0)
        live_windows = {w.index: w for w in live.windows()}
        replay_windows = {w.index: w for w in replayed.windows()}
        busy = {i for i, w in live_windows.items() if w.count}
        assert busy == {i for i, w in replay_windows.items() if w.count}
        for index in busy:
            assert replay_windows[index].count == live_windows[index].count
            for component, value in live_windows[index].components.items():
                assert replay_windows[index].components[
                    component
                ] == pytest.approx(value, abs=1e-9)

    def test_replay_totals_match_analyze_to_1e6(
        self, tiny_workload, small_table
    ):
        telemetry, _, _ = self._traced_run(tiny_workload, small_table)
        spans = telemetry.tracer.spans
        plane = replay_spans(spans)
        report = analyze_spans(spans, phi=0.99)
        track = report.tracks["sim"]
        totals = plane.attribution_totals()
        for component, entry in track.components.items():
            want = entry["overall_mean_ms"] * track.count
            assert abs(totals[component] - want) < 1e-6

    def test_events_round_trip_through_spans(self, tiny_workload, small_table):
        telemetry = Telemetry()
        telemetry.tracer.instant(
            "observe.event",
            track="observe",
            at_ms=42.0,
            kind="mode_transition",
            from_mode="eager",
            to_mode="steady",
        )
        events = events_from_spans(telemetry.tracer.spans)
        assert len(events) == 1
        assert events[0].kind == "mode_transition"
        assert events[0].detail["to_mode"] == "steady"

    def test_replay_rederives_anomalies_instead_of_echoing(self):
        """Recorded anomaly instants are skipped on replay — the
        detector re-runs, so flags appear exactly once."""
        telemetry = Telemetry()
        tracer = telemetry.tracer
        for i in range(60):
            latency = 5.0 if i < 40 else 90.0
            start = 10.0 * i
            tracer.complete(
                "run",
                start,
                start + latency,
                track="sim",
                lane=i,
                latency_ms=latency,
                service_ms=latency,
                queue_ms=0.0,
                contention_ms=0.0,
                boost_wait_ms=0.0,
                stall_ms=0.0,
            )
        tracer.instant(
            "observe.event",
            track="observe",
            at_ms=410.0,
            kind="anomaly",
            signal="p99_ms",
            direction=1,
        )
        plane = replay_spans(
            telemetry.tracer.spans,
            window_ms=50.0,
            detector=ChangepointDetector(warmup=3, threshold=4.0),
        )
        anomalies = plane.anomalies()
        # One re-derived upward flag; the recorded instant is not echoed.
        up = [e for e in anomalies if e.detail.get("direction") == 1]
        assert len(up) == 1

    def test_empty_trace_refuses_replay(self):
        with pytest.raises(ConfigurationError):
            replay_spans([])

    def test_render_smoke(self, tiny_workload, small_table):
        _, plane, _ = self._traced_run(tiny_workload, small_table)
        text = plane.render()
        assert "attribution" in text
        assert "bar legend" in text
