"""Tests for the online SLO monitor (windows, burn rates, drift)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.observe import SLOMonitor, SLOTarget


def _monitor(**kwargs) -> SLOMonitor:
    defaults = dict(
        target=SLOTarget(percentile=0.9, threshold_ms=100.0),
        short_window_ms=1_000.0,
        long_window_ms=10_000.0,
        min_samples=10,
    )
    defaults.update(kwargs)
    return SLOMonitor(**defaults)


class TestValidation:
    def test_target_bounds(self):
        with pytest.raises(ConfigurationError):
            SLOTarget(percentile=1.0, threshold_ms=100.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(percentile=0.99, threshold_ms=0.0)

    def test_error_budget(self):
        assert SLOTarget(0.99, 250.0).error_budget == pytest.approx(0.01)

    def test_monitor_bounds(self):
        target = SLOTarget(0.99, 250.0)
        with pytest.raises(ConfigurationError):
            SLOMonitor(target, short_window_ms=0.0)
        with pytest.raises(ConfigurationError):
            SLOMonitor(target, short_window_ms=5_000.0, long_window_ms=1_000.0)
        with pytest.raises(ConfigurationError):
            SLOMonitor(target, burn_rate_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SLOMonitor(target, drift_factor=1.0)
        with pytest.raises(ConfigurationError):
            SLOMonitor(target, min_samples=0)
        with pytest.raises(ConfigurationError):
            _monitor().observe(-1.0, at_ms=0.0)
        with pytest.raises(ConfigurationError):
            _monitor().burn_rate("medium")


class TestEmptyContract:
    """Monitoring surface: empty windows answer nan, never raise."""

    def test_quantiles_nan_when_empty(self):
        monitor = _monitor()
        assert math.isnan(monitor.percentile("short"))
        assert math.isnan(monitor.percentile("long"))
        assert math.isnan(monitor.burn_rate("short"))

    def test_nan_never_breaches_or_drifts(self):
        monitor = _monitor()
        assert not monitor.breached()
        assert not monitor.drifted()
        status = monitor.status(at_ms=0.0)
        assert not status.breached and not status.drifted

    def test_eviction_can_empty_a_window(self):
        monitor = _monitor()
        monitor.observe(50.0, at_ms=0.0)
        status = monitor.status(at_ms=50_000.0)  # everything evicted
        assert status.short_count == 0 and status.long_count == 0
        assert math.isnan(status.short_percentile_ms)


class TestWindows:
    def test_eviction_by_span(self):
        monitor = _monitor()
        for t in range(20):
            monitor.observe(10.0, at_ms=float(t) * 100.0)
        status = monitor.status()
        # Short window spans 1000 ms: samples in [900, 1900] survive
        # (the cutoff boundary is inclusive).
        assert status.short_count == 11
        assert status.long_count == 20

    def test_percentile_order_statistic(self):
        monitor = _monitor()
        for i, latency in enumerate([10.0, 20.0, 30.0, 40.0, 50.0]):
            monitor.observe(latency, at_ms=float(i))
        # ceil(0.9 * 5) = 5th of 5 -> 50.
        assert monitor.percentile("short") == 50.0

    def test_counts_and_violations(self):
        monitor = _monitor()
        for i in range(10):
            monitor.observe(200.0 if i % 2 else 10.0, at_ms=float(i))
        assert monitor.observed == 10
        assert monitor.total_violations == 5
        # 50% violations against a 10% budget: burning at 5x.
        assert monitor.burn_rate("short") == pytest.approx(5.0)


class TestBreach:
    def test_healthy_stream_never_breaches(self):
        monitor = _monitor()
        for i in range(100):
            monitor.observe(50.0, at_ms=float(i) * 10.0)
        assert not monitor.breached()
        assert monitor.status().long_burn_rate == 0.0

    def test_sustained_violations_breach(self):
        monitor = _monitor(burn_rate_threshold=2.0)
        for i in range(100):
            monitor.observe(500.0, at_ms=float(i) * 10.0)
        assert monitor.breached()
        assert monitor.status().breached

    def test_short_blip_does_not_breach(self):
        """The long window filters a burst the short window flags."""
        monitor = _monitor(burn_rate_threshold=3.0, min_samples=5)
        for i in range(200):
            monitor.observe(10.0, at_ms=float(i) * 100.0)
        for i in range(30):  # 300 ms burst at the end
            monitor.observe(500.0, at_ms=20_000.0 + float(i) * 10.0)
        assert monitor.burn_rate("short") >= 3.0
        assert monitor.burn_rate("long") < 3.0
        assert not monitor.breached()

    def test_cold_monitor_stays_quiet(self):
        monitor = _monitor(min_samples=50)
        for i in range(10):
            monitor.observe(500.0, at_ms=float(i))
        assert not monitor.breached()


class TestDrift:
    def test_stable_stream_does_not_drift(self):
        monitor = _monitor(drift_factor=1.5)
        for i in range(500):
            monitor.observe(100.0 + (i % 7), at_ms=float(i) * 10.0)
        assert not monitor.drifted()

    def test_upward_shift_drifts(self):
        """Doubling the mix's latency drifts the short window off the
        long baseline."""
        monitor = _monitor(drift_factor=1.5)
        for i in range(900):
            monitor.observe(100.0, at_ms=float(i) * 10.0)
        for i in range(100):
            monitor.observe(250.0, at_ms=9_000.0 + float(i) * 10.0)
        assert monitor.drifted()
        assert monitor.status().drifted

    def test_downward_shift_drifts(self):
        monitor = _monitor(drift_factor=1.5)
        for i in range(900):
            monitor.observe(100.0, at_ms=float(i) * 10.0)
        for i in range(100):
            monitor.observe(20.0, at_ms=9_000.0 + float(i) * 10.0)
        assert monitor.drifted()


class TestLifecycle:
    def test_reset_forgets_everything(self):
        monitor = _monitor()
        for i in range(50):
            monitor.observe(500.0, at_ms=float(i))
        monitor.reset()
        assert monitor.observed == 0
        assert monitor.total_violations == 0
        assert math.isnan(monitor.percentile("short"))

    def test_status_as_dict_round_trip(self):
        monitor = _monitor()
        for i in range(20):
            monitor.observe(50.0, at_ms=float(i) * 10.0)
        data = monitor.status().as_dict()
        assert data["short_count"] == 20  # all within the short span
        assert data["breached"] is False

    def test_determinism(self):
        """Same stream, same verdicts — the monitor is clock-free."""

        def run() -> list[bool]:
            monitor = _monitor(min_samples=5)
            verdicts = []
            for i in range(300):
                latency = 500.0 if i > 150 else 10.0
                monitor.observe(latency, at_ms=float(i) * 10.0)
                verdicts.append(monitor.breached())
            return verdicts

        assert run() == run()
