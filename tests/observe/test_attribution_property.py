"""Property test: the flight recorder's components sum to the latency.

The ISSUE's acceptance bound: for every completed request of a
simulation exercising boosting, faults (stragglers, core loss,
stalls), and load shedding, the additive decomposition

    queue + service + contention + boost_wait + stall == latency

holds to within 1e-6 ms.  See DESIGN.md §9 for why the decomposition
telescopes exactly in virtual time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.faults.plan import CoreFault, FaultPlan, StallFault
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.sim.engine import simulate
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.workloads.workload import Workload

TOLERANCE_MS = 1e-6

_CURVE = TabulatedSpeedup([1.0, 1.8, 2.4, 2.8])
_MODEL = UniformSpeedupModel(_CURVE)
_SEARCH = SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=50.0, num_bins=16)


def _workload() -> Workload:
    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(np.log(60.0), 0.8, size=n)

    return Workload(
        name="attr-test", sampler=sampler, speedup_model=_MODEL,
        max_degree=4, profile_size=300,
    )


def _arrivals(n: int, rps: float, seed: int):
    from repro.workloads.arrivals import PoissonProcess

    rng = np.random.default_rng(seed)
    return _workload().arrivals(n, PoissonProcess(rps), rng)


def _fm_scheduler() -> FMScheduler:
    table = build_interval_table(_workload().profile, _SEARCH)
    return FMScheduler(table, boosting=True)


def _fault_plan() -> FaultPlan:
    return FaultPlan(
        core_faults=(CoreFault(time_ms=400.0, duration_ms=600.0, cores=2),),
        stalls=(
            StallFault(time_ms=300.0, duration_ms=80.0),
            StallFault(time_ms=1_200.0, duration_ms=120.0),
        ),
        straggler_rate=0.15,
        straggler_sigma=0.6,
        seed=17,
    )


def _assert_additive(result) -> float:
    assert result.records, "run completed nothing"
    worst = 0.0
    for record in result.records:
        residue = abs(record.attributed_ms - record.latency_ms)
        worst = max(worst, residue)
        assert residue <= TOLERANCE_MS, (
            f"rid {record.rid}: components sum to {record.attributed_ms}, "
            f"latency {record.latency_ms} (residue {residue})"
        )
        assert sum(record.attribution().values()) == pytest.approx(
            record.attributed_ms
        )
        for name in ATTRIBUTION_COMPONENTS:
            assert record.attribution()[name] >= 0.0
    return worst


class TestAdditivity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_fm_with_faults_and_boosting(self, seed):
        """The acceptance property: FM + boosting + every fault kind."""
        result = simulate(
            _arrivals(400, rps=45.0, seed=seed),
            _fm_scheduler(),
            cores=4,
            fault_plan=_fault_plan(),
        )
        _assert_additive(result)

    def test_components_all_exercised(self):
        """The property run must actually hit every component."""
        result = simulate(
            _arrivals(400, rps=45.0, seed=3),
            _fm_scheduler(),
            cores=4,
            fault_plan=_fault_plan(),
        )
        totals = {
            name: sum(r.attribution()[name] for r in result.records)
            for name in ATTRIBUTION_COMPONENTS
        }
        for name, total in totals.items():
            assert total > 0.0, f"component {name} never accrued"

    @pytest.mark.parametrize(
        "scheduler_factory",
        [SequentialScheduler, lambda: FixedScheduler(3), _fm_scheduler],
    )
    def test_fault_free_policies(self, scheduler_factory):
        result = simulate(
            _arrivals(300, rps=50.0, seed=7), scheduler_factory(), cores=4
        )
        _assert_additive(result)
        for record in result.records:
            assert record.stall_ms == 0.0

    def test_uncontended_run_is_pure_service(self):
        """A single request on idle cores: latency == service exactly."""
        result = simulate(_arrivals(1, rps=1.0, seed=5), _fm_scheduler(), cores=8)
        record = result.records[0]
        assert record.contention_ms == pytest.approx(0.0, abs=TOLERANCE_MS)
        assert record.service_ms == pytest.approx(
            record.latency_ms, abs=TOLERANCE_MS
        )

    def test_attribution_flag_off_zeroes_components(self):
        result = simulate(
            _arrivals(100, rps=45.0, seed=9),
            _fm_scheduler(),
            cores=4,
            attribution=False,
        )
        for record in result.records:
            assert record.service_ms == 0.0
            assert record.contention_ms == 0.0
            assert record.boost_wait_ms == 0.0
            assert record.stall_ms == 0.0
            # Queue wait derives from timestamps, so it still reports.
            assert record.queueing_ms >= 0.0


class TestSummary:
    def test_attribution_summary_shape(self):
        result = simulate(
            _arrivals(300, rps=45.0, seed=3), _fm_scheduler(), cores=4
        )
        summary = result.attribution_summary(0.9)
        assert set(summary) == {"overall", "tail"}
        for view in summary.values():
            assert set(view) == set(ATTRIBUTION_COMPONENTS) | {"latency_ms"}
            assert sum(view[c] for c in ATTRIBUTION_COMPONENTS) == pytest.approx(
                view["latency_ms"], abs=1e-6
            )
        assert summary["tail"]["latency_ms"] >= summary["overall"]["latency_ms"]

    def test_tail_records_match_threshold(self):
        result = simulate(
            _arrivals(300, rps=45.0, seed=3), _fm_scheduler(), cores=4
        )
        threshold = result.tail_latency_ms(0.9)
        tail = result.tail_records(0.9)
        assert tail
        assert all(r.latency_ms >= threshold for r in tail)
        assert len(tail) == sum(
            1 for r in result.records if r.latency_ms >= threshold
        )
