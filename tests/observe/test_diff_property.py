"""Property tests for the ledger/diff statistical machinery.

Two contracts under arbitrary value streams:

* **Serialize commutes with merge** — restoring histograms from their
  :meth:`LogHistogram.dump_state` payloads and then merging yields the
  same bit-exact state as merging live histograms and then
  serializing.  This is what lets ledger artifacts from different
  processes (or ledger files) be merged offline without loss.
* **Bootstrap CIs cover the point estimate** — the bucket-level
  bootstrap's quantile distribution must bracket the histogram's own
  point estimate, up to one gamma step of the representative grid
  (both the replicates and the point live on that grid, so the
  distribution can sit one adjacent bucket away at rank boundaries,
  never further).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.observe.diff import DEFAULT_PHIS, bootstrap_quantiles
from repro.telemetry.histogram import LogHistogram

_EPS = 0.01
_GAMMA = (1 + _EPS) / (1 - _EPS)

_values = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=100,
)


def _fill(values) -> LogHistogram:
    histogram = LogHistogram(relative_error=_EPS)
    histogram.record_many(values)
    return histogram


@settings(max_examples=100, deadline=None)
@given(values_a=_values, values_b=_values)
def test_restore_then_merge_commutes_with_merge_then_serialize(
    values_a, values_b
):
    live_a, live_b = _fill(values_a), _fill(values_b)

    # Path 1: merge live histograms, then serialize.
    merged_live = live_a.copy()
    merged_live.update(live_b)
    state_via_live = merged_live.dump_state()

    # Path 2: serialize each, restore, then merge the restorations.
    restored_a = LogHistogram.from_state(live_a.dump_state())
    restored_b = LogHistogram.from_state(live_b.dump_state())
    restored_a.update(restored_b)
    state_via_restore = restored_a.dump_state()

    assert state_via_live == state_via_restore
    assert restored_a.state() == merged_live.state()


@settings(max_examples=100, deadline=None)
@given(values=_values, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_serialized_round_trip_preserves_bootstrap(values, seed):
    """The bootstrap is a function of histogram *state*: a ledger
    round-trip must reproduce the replicate matrix bit for bit."""
    histogram = _fill(values)
    restored = LogHistogram.from_state(histogram.dump_state())
    direct = bootstrap_quantiles(
        histogram, DEFAULT_PHIS, 50, np.random.default_rng(seed)
    )
    roundtrip = bootstrap_quantiles(
        restored, DEFAULT_PHIS, 50, np.random.default_rng(seed)
    )
    assert np.array_equal(direct, roundtrip)


@settings(max_examples=100, deadline=None)
@given(values=_values, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_bootstrap_interval_brackets_point_estimate(values, seed):
    histogram = _fill(values)
    replicates = bootstrap_quantiles(
        histogram, DEFAULT_PHIS, 200, np.random.default_rng(seed)
    )
    for column, phi in enumerate(DEFAULT_PHIS):
        point = histogram.percentile(phi)
        lo, hi = np.percentile(replicates[:, column], [2.5, 97.5])
        # One gamma step of slack on each side: replicates and point
        # both live on the representative grid (see module docstring).
        assert float(lo) <= point * _GAMMA + 1e-12
        assert float(hi) >= point / _GAMMA - 1e-12
