"""``repro diff``: bootstrap CIs, significance, ranking, CLI.

Two kinds of inputs: real simulator entries (through the ledger, like
production) for the exact-null and determinism contracts, and
synthetic entries with hand-built histograms where the ground truth is
known — a 2x latency shift MUST be significant, equal-seed runs MUST
diff to a certain null, and the explanation ranking MUST put the
phase that moved first.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import TINY as TEST_SCALE
from repro.experiments.runner import run_policy
from repro.experiments.tables import lucene_table
from repro.observe.diff import (
    DEFAULT_PHIS,
    PHASE_COLUMNS,
    QUANTILE_COLUMNS,
    diff_runs,
    main as diff_main,
    phase_rows,
    quantile_rows,
)
from repro.observe.ledger import (
    RunArtifacts,
    RunCard,
    RunEntry,
    RunLedger,
    entry_from_result,
)
from repro.schedulers import FixedScheduler, FMScheduler
from repro.telemetry import LogHistogram
from repro.workloads import lucene as lucene_mod


# ----------------------------------------------------------------------
# Real simulator entries (the production path)
# ----------------------------------------------------------------------
def _sim_entry(name: str, scheduler, seed: int = 321) -> RunEntry:
    workload = lucene_mod.lucene_workload(profile_size=TEST_SCALE.profile_size)
    result = run_policy(
        scheduler,
        workload,
        rps=45.0,
        cores=lucene_mod.CORES,
        num_requests=TEST_SCALE.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        seed=seed,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )
    return entry_from_result(
        name,
        result,
        config={"policy": name, "rps": 45.0, "seed": seed},
        seed=seed,
        scheduler=name,
        workload=workload,
        scale=TEST_SCALE.name,
    )


@pytest.fixture(scope="module")
def fm_entry() -> RunEntry:
    return _sim_entry("FM", FMScheduler(lucene_table(TEST_SCALE)))


@pytest.fixture(scope="module")
def fix_entry() -> RunEntry:
    return _sim_entry("FIX-3", FixedScheduler(3))


# ----------------------------------------------------------------------
# Synthetic entries (known ground truth)
# ----------------------------------------------------------------------
def _synthetic_entry(
    name: str,
    latencies: list[float],
    tail: dict | None = None,
    events: list[dict] | None = None,
    metrics: dict | None = None,
) -> RunEntry:
    artifacts = RunArtifacts()
    histogram = LogHistogram()
    histogram.record_many(latencies)
    artifacts.add_histogram("latency_ms", histogram)
    if tail is not None:
        artifacts.attribution = {"tail": tail}
    artifacts.events = events or []
    artifacts.metrics = metrics or {}
    card = RunCard(name=name, fingerprint="0" * 12, seed=1)
    return RunEntry(card=card, artifacts=artifacts)


def _spread(center: float, n: int = 400) -> list[float]:
    # Deterministic, histogram-friendly spread around `center`.
    return [center * (1.0 + 0.3 * ((i % 17) / 17.0 - 0.5)) for i in range(n)]


class TestExactNull:
    def test_self_diff_is_certain_null(self, fm_entry):
        clone = RunEntry.from_dict(json.loads(json.dumps(fm_entry.to_dict())))
        diff = diff_runs(fm_entry, clone)
        assert diff.identical
        assert diff.is_null()
        assert all(q.delta_ms == 0.0 for q in diff.quantiles)
        assert all(q.ci_lo == 0.0 and q.ci_hi == 0.0 for q in diff.quantiles)
        assert all(not p.significant for p in diff.phases)
        assert "bit-identical" in diff.render()

    def test_same_config_same_seed_reruns_diff_to_null(self):
        a = _sim_entry("FM", FMScheduler(lucene_table(TEST_SCALE)))
        b = _sim_entry("FM", FMScheduler(lucene_table(TEST_SCALE)))
        diff = diff_runs(a, b)
        assert diff.identical and diff.is_null()

    def test_different_runs_do_not_short_circuit(self, fm_entry, fix_entry):
        assert not diff_runs(fm_entry, fix_entry).identical


class TestSignificance:
    def test_large_shift_is_significant(self):
        a = _synthetic_entry("slow", _spread(200.0))
        b = _synthetic_entry("fast", _spread(100.0))
        diff = diff_runs(a, b)
        p99 = diff.quantile(0.99)
        assert p99.delta_ms > 0
        assert p99.ci_lo > 0
        assert p99.significant
        assert not diff.is_null()

    def test_sub_floor_delta_is_noise(self):
        # Two histograms one representative apart everywhere: the delta
        # sits inside the relative-error floor, so bucketing noise.
        values = _spread(100.0)
        a = _synthetic_entry("a", values)
        b = _synthetic_entry("b", [v * 1.001 for v in values])
        diff = diff_runs(a, b)
        for q in diff.quantiles:
            assert abs(q.delta_ms) <= q.floor_ms
            assert not q.significant

    def test_explanation_names_the_moved_phase(self):
        tail_a = {"queue_ms": 150.0, "service_ms": 100.0,
                  "contention_ms": 20.0, "boost_wait_ms": 0.0,
                  "stall_ms": 0.0, "latency_ms": 270.0}
        tail_b = {"queue_ms": 10.0, "service_ms": 100.0,
                  "contention_ms": 15.0, "boost_wait_ms": 0.0,
                  "stall_ms": 0.0, "latency_ms": 125.0}
        a = _synthetic_entry("loaded", _spread(270.0), tail=tail_a)
        b = _synthetic_entry("calm", _spread(125.0), tail=tail_b)
        diff = diff_runs(a, b)
        assert diff.phases[0].component == "queue_ms"
        assert diff.phases[0].share_of_p99_delta > 0.9
        assert "queue explains" in diff.explanation()

    def test_insignificant_diff_explains_itself(self):
        values = _spread(100.0)
        diff = diff_runs(
            _synthetic_entry("a", values), _synthetic_entry("b", values)
        )
        assert "statistically indistinguishable" in diff.explanation()


class TestDeterminism:
    def test_same_inputs_same_report(self, fm_entry, fix_entry):
        first = diff_runs(fm_entry, fix_entry).to_dict()
        second = diff_runs(fm_entry, fix_entry).to_dict()
        assert first == second

    def test_seed_moves_cis_not_points(self, fm_entry, fix_entry):
        a = diff_runs(fm_entry, fix_entry, seed=1)
        b = diff_runs(fm_entry, fix_entry, seed=2)
        for qa, qb in zip(a.quantiles, b.quantiles):
            assert qa.a_ms == qb.a_ms and qa.b_ms == qb.b_ms
        assert [q.delta_ms for q in a.quantiles] == [
            q.delta_ms for q in b.quantiles
        ]


class TestDiffSurface:
    def test_event_timeline_diff(self):
        events_a = [
            {"kind": "mode_transition", "window": 3,
             "detail": {"to_mode": "brownout"}},
            {"kind": "mode_transition", "window": 5,
             "detail": {"to_mode": "normal"}},
        ]
        events_b = [
            {"kind": "mode_transition", "window": 9,
             "detail": {"to_mode": "normal"}},
        ]
        diff = diff_runs(
            _synthetic_entry("a", _spread(100.0), events=events_a),
            _synthetic_entry("b", _spread(110.0), events=events_b),
        )
        assert len(diff.events) == 1
        delta = diff.events[0]
        assert delta.signature == "brownout"
        assert (delta.count_a, delta.count_b) == (1, 0)
        assert delta.first_window_a == 3

    def test_scalar_metric_diff(self):
        diff = diff_runs(
            _synthetic_entry("a", _spread(100.0),
                             metrics={"shed_count": 5.0, "count": 400.0}),
            _synthetic_entry("b", _spread(100.0),
                             metrics={"shed_count": 0.0, "count": 400.0}),
        )
        assert diff.metrics == {
            "shed_count": {"a": 5.0, "b": 0.0, "delta": 5.0}
        }

    def test_table_adapters_match_columns(self, fm_entry, fix_entry):
        diff = diff_runs(fm_entry, fix_entry)
        for row in quantile_rows(diff):
            assert len(row) == len(QUANTILE_COLUMNS)
        for row in phase_rows(diff):
            assert len(row) == len(PHASE_COLUMNS)
        assert len(quantile_rows(diff)) == len(DEFAULT_PHIS)

    def test_validation(self, fm_entry, fix_entry):
        with pytest.raises(ConfigurationError):
            diff_runs(fm_entry, fix_entry, resamples=1)
        with pytest.raises(ConfigurationError):
            diff_runs(fm_entry, fix_entry, confidence=1.5)
        with pytest.raises(ConfigurationError):
            diff_runs(fm_entry, fix_entry, histogram="nope")
        with pytest.raises(ConfigurationError):
            diff_runs(fm_entry, fix_entry).quantile(0.42)


class TestCli:
    @pytest.fixture()
    def runs_dir(self, tmp_path, fm_entry, fix_entry):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(fm_entry)
        ledger.append(fix_entry)
        ledger.append(fm_entry)
        return tmp_path / "runs"

    def test_text_report(self, runs_dir, capsys):
        assert diff_main(["FM", "FIX-3", "--runs", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro diff" in out
        assert "explanation:" in out
        assert "verdict:" in out

    def test_json_self_diff_is_null(self, runs_dir, capsys):
        assert (
            diff_main(["FM#0", "FM#2", "--runs", str(runs_dir), "--json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True
        assert report["null"] is True

    def test_custom_phi_grid(self, runs_dir, capsys):
        assert (
            diff_main(
                ["0", "1", "--runs", str(runs_dir), "--phi", "0.9", "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert [q["phi"] for q in report["quantiles"]] == [0.9]

    def test_unknown_run_exits_2(self, runs_dir, capsys):
        assert diff_main(["nope", "FM", "--runs", str(runs_dir)]) == 2
        assert "repro diff:" in capsys.readouterr().err

    def test_empty_ledger_exits_2(self, tmp_path, capsys):
        assert diff_main(["0", "1", "--runs", str(tmp_path / "none")]) == 2
