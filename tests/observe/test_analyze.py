"""Trace analyzer tests: loading, reconstruction, and the ground-truth
cross-check (analyzer output vs RequestRecord flight-recorder data)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster.hedging import HedgePolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.errors import ConfigurationError
from repro.observe import analyze_spans, analyze_trace, load_trace, requests_from_spans
from repro.schedulers import FMScheduler
from repro.sim.engine import simulate
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.telemetry import Telemetry
from repro.telemetry.export import write_chrome_trace, write_spans_jsonl
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.workload import Workload

PHI = 0.9

_CURVE = TabulatedSpeedup([1.0, 1.8, 2.4, 2.8])
_MODEL = UniformSpeedupModel(_CURVE)
_SEARCH = SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=50.0, num_bins=16)


def _workload() -> Workload:
    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(np.log(60.0), 0.8, size=n)

    return Workload(
        name="analyze-test", sampler=sampler, speedup_model=_MODEL,
        max_degree=4, profile_size=300,
    )


@pytest.fixture(scope="module")
def sim_run():
    """One traced FM run shared by the module's tests."""
    workload = _workload()
    table = build_interval_table(workload.profile, _SEARCH)
    telemetry = Telemetry()
    rng = np.random.default_rng(21)
    arrivals = workload.arrivals(300, PoissonProcess(45.0), rng)
    result = simulate(
        arrivals, FMScheduler(table), cores=4, telemetry=telemetry
    )
    return result, telemetry


class TestLoading:
    def test_chrome_round_trip(self, sim_run, tmp_path):
        _, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "trace.json", telemetry)
        trace = load_trace(path)
        assert len(trace.spans) == len(telemetry.tracer.spans)
        assert trace.counters()["sim.completions"] == 300
        tracks = {s.track for s in trace.spans}
        assert "sim" in tracks

    def test_jsonl_round_trip(self, sim_run, tmp_path):
        _, telemetry = sim_run
        path = write_spans_jsonl(tmp_path / "spans.jsonl", telemetry.tracer.spans)
        trace = load_trace(path)
        assert len(trace.spans) == len(telemetry.tracer.spans)
        assert trace.metrics is None  # JSONL carries no metrics block

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_metadata_events_come_first_and_deterministic(self, sim_run, tmp_path):
        _, telemetry = sim_run
        from repro.telemetry.export import to_chrome_trace

        document = to_chrome_trace(telemetry.tracer.spans)
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        # All metadata precedes all span events.
        first_span = next(i for i, e in enumerate(events) if e["ph"] != "M")
        assert all(e["ph"] == "M" for e in events[:first_span])
        assert not any(e["ph"] == "M" for e in events[first_span:])
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}
        thread_names = [e for e in metadata if e["name"] == "thread_name"]
        assert thread_names[0]["args"]["name"].startswith("lane ")
        # Every (pid, tid) with span events has a thread_name.
        span_lanes = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
        named_lanes = {(e["pid"], e["tid"]) for e in thread_names}
        assert span_lanes <= named_lanes
        # Determinism: a second export is byte-identical.
        assert json.dumps(document) == json.dumps(
            to_chrome_trace(telemetry.tracer.spans)
        )


class TestGroundTruthCrossCheck:
    """ISSUE acceptance: `repro analyze` output on a recorded trace must
    match the RequestRecord ground truth."""

    def test_chrome_trace_matches_records(self, sim_run, tmp_path):
        result, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "trace.json", telemetry)
        report = analyze_trace(path, phi=PHI).tracks["sim"]

        assert report.count == len(result.records)
        assert report.tail_threshold_ms == pytest.approx(
            result.tail_latency_ms(PHI), rel=1e-12
        )
        assert report.tail_count == len(result.tail_records(PHI))

        truth = result.attribution_summary(PHI)
        for name in ATTRIBUTION_COMPONENTS:
            assert report.components[name]["overall_mean_ms"] == pytest.approx(
                truth["overall"][name], rel=1e-9, abs=1e-9
            )
            assert report.components[name]["tail_mean_ms"] == pytest.approx(
                truth["tail"][name], rel=1e-9, abs=1e-9
            )
        assert report.mean_ms == pytest.approx(result.mean_latency_ms(), rel=1e-9)
        # Tail shares sum to 1 (the decomposition is additive).
        assert sum(
            report.components[name]["tail_share"]
            for name in ATTRIBUTION_COMPONENTS
        ) == pytest.approx(1.0, abs=1e-6)

    def test_jsonl_agrees_with_chrome(self, sim_run, tmp_path):
        _, telemetry = sim_run
        chrome = write_chrome_trace(tmp_path / "t.json", telemetry)
        jsonl = write_spans_jsonl(tmp_path / "t.jsonl", telemetry.tracer.spans)
        a = analyze_trace(chrome, phi=PHI).tracks["sim"]
        b = analyze_trace(jsonl, phi=PHI).tracks["sim"]
        assert a.tail_threshold_ms == pytest.approx(b.tail_threshold_ms)
        assert a.components.keys() == b.components.keys()


class TestReconstruction:
    def test_pre_attribution_traces_fall_back_to_coarse_split(self, sim_run):
        """Traces from attribution=False runs still analyze (coarse)."""
        workload = _workload()
        table = build_interval_table(workload.profile, _SEARCH)
        telemetry = Telemetry()
        rng = np.random.default_rng(5)
        simulate(
            workload.arrivals(100, PoissonProcess(45.0), rng),
            FMScheduler(table),
            cores=4,
            telemetry=telemetry,
            attribution=False,
        )
        views = requests_from_spans(telemetry.tracer.spans)["sim"]
        assert views
        assert all("execute_ms" in v.components for v in views)

    def test_cluster_track(self, tmp_path):
        workload = _workload()
        table = build_interval_table(workload.profile, _SEARCH)
        telemetry = Telemetry()
        simulate_cluster_robust(
            scheduler_factory=lambda: FMScheduler(table, boosting=False),
            workload=workload,
            num_servers=3,
            num_queries=60,
            process=PoissonProcess(40.0),
            cores=4,
            seed=31,
            hedge=HedgePolicy(delay_percentile=0.7),
            telemetry=telemetry,
        )
        path = write_chrome_trace(tmp_path / "cluster.json", telemetry)
        report = analyze_trace(path, phi=PHI)
        cluster = report.tracks["cluster"]
        assert cluster.count == 60
        assert "slowest_shard_ms" in cluster.components
        # Hedge correlate present (the run hedged aggressively at p70).
        assert cluster.hedged_rate is not None
        assert report.counters["cluster.hedges"] > 0

    def test_track_filter_and_unknown_track(self, sim_run, tmp_path):
        _, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        report = analyze_trace(path, phi=PHI, track="sim")
        assert set(report.tracks) == {"sim"}
        with pytest.raises(ConfigurationError):
            analyze_trace(path, phi=PHI, track="runtime")

    def test_bad_phi_rejected(self, sim_run):
        _, telemetry = sim_run
        with pytest.raises(ConfigurationError):
            analyze_spans(telemetry.tracer.spans, phi=1.0)


class TestCLI:
    def test_repro_analyze_subcommand(self, sim_run, tmp_path, capsys):
        from repro.cli import main

        _, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        out_json = tmp_path / "report.json"
        code = main(["analyze", str(path), "--phi", str(PHI), "--json", str(out_json)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "tail attribution report" in printed
        assert "track sim" in printed
        report = json.loads(out_json.read_text())
        assert report["phi"] == PHI
        assert "sim" in report["tracks"]

    def test_missing_file_is_graceful(self, capsys):
        from repro.cli import main

        assert main(["analyze", "/nonexistent/trace.json"]) == 2
        assert "repro analyze" in capsys.readouterr().out

    def test_render_includes_slowest_and_context(self, sim_run, tmp_path):
        _, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        text = analyze_trace(path, phi=PHI, top=3).render()
        assert "dominant component" in text
        assert "sim.completions" in text


@pytest.fixture(scope="module")
def hetero_run():
    """One traced run on a big/little topology: spans carry energy."""
    from repro.hetero import Topology

    workload = _workload()
    table = build_interval_table(workload.profile, _SEARCH)
    telemetry = Telemetry()
    rng = np.random.default_rng(33)
    arrivals = workload.arrivals(200, PoissonProcess(45.0), rng)
    result = simulate(
        arrivals, FMScheduler(table), cores=4, telemetry=telemetry,
        topology=Topology.big_little(big=1, little=3),
    )
    return result, telemetry


class TestEnergySurfacing:
    def test_hetero_trace_reports_energy(self, hetero_run, tmp_path):
        result, telemetry = hetero_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        report = analyze_trace(path, phi=PHI)
        track = report.tracks["sim"]
        assert track.has_energy
        # The analyzer's per-query mean must re-add to the flight
        # recorder's per-request attribution.
        expected = sum(r.energy_j for r in result.records) / len(result.records)
        assert track.joules_per_query == pytest.approx(expected)
        assert track.tail_joules_per_query >= track.joules_per_query

    def test_render_and_json_carry_energy(self, hetero_run, tmp_path):
        _, telemetry = hetero_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        report = analyze_trace(path, phi=PHI, top=3)
        text = report.render()
        assert "J/query" in text
        assert "energy (J)" in text  # slowest-requests column
        data = report.tracks["sim"].to_json()
        assert data["joules_per_query"] == report.tracks["sim"].joules_per_query
        assert all("energy_j" in e and "pool" in e for e in data["slowest"])

    def test_legacy_trace_is_nan_safe(self, sim_run, tmp_path):
        """A trace that predates energy accounting renders cleanly."""
        _, telemetry = sim_run
        path = write_chrome_trace(tmp_path / "t.json", telemetry)
        report = analyze_trace(path, phi=PHI)
        track = report.tracks["sim"]
        assert not track.has_energy
        text = report.render()
        assert "J/query" not in text
        assert "joules_per_query" not in track.to_json()
