"""Tests for arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    PiecewiseRateProcess,
    PoissonProcess,
    RateQuantum,
    UniformProcess,
)


class TestPoisson:
    def test_mean_rate(self):
        rng = np.random.default_rng(1)
        times = PoissonProcess(100.0).times_ms(20_000, rng)
        mean_gap = np.diff(np.concatenate([[0.0], times])).mean()
        assert mean_gap == pytest.approx(10.0, rel=0.05)

    def test_times_are_increasing(self):
        rng = np.random.default_rng(2)
        times = PoissonProcess(50.0).times_ms(500, rng)
        assert np.all(np.diff(times) >= 0)

    def test_seed_determinism(self):
        a = PoissonProcess(50.0).times_ms(100, np.random.default_rng(3))
        b = PoissonProcess(50.0).times_ms(100, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0)
        with pytest.raises(ConfigurationError):
            PoissonProcess(10.0).times_ms(0, np.random.default_rng(0))


class TestUniform:
    def test_exact_spacing(self):
        times = UniformProcess(100.0).times_ms(5, np.random.default_rng(0))
        assert np.allclose(times, [10.0, 20.0, 30.0, 40.0, 50.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformProcess(-1.0)


class TestPiecewiseRate:
    def test_rates_differ_between_quanta(self):
        rng = np.random.default_rng(4)
        process = PiecewiseRateProcess([(200.0, 2000), (20.0, 2000)])
        times = process.times_ms(4000, rng)
        gaps = np.diff(np.concatenate([[0.0], times]))
        fast = gaps[:2000].mean()
        slow = gaps[2000:].mean()
        assert fast == pytest.approx(5.0, rel=0.1)
        assert slow == pytest.approx(50.0, rel=0.1)

    def test_cycles_when_exhausted(self):
        rng = np.random.default_rng(5)
        process = PiecewiseRateProcess([(100.0, 10)])
        times = process.times_ms(35, rng)
        assert len(times) == 35

    def test_quantum_boundaries(self):
        process = PiecewiseRateProcess([(45.0, 500), (30.0, 500)])
        bounds = process.quantum_boundaries(1200)
        assert bounds == [(0, 500), (500, 1000), (1000, 1200)]

    def test_accepts_rate_quantum_objects(self):
        process = PiecewiseRateProcess([RateQuantum(10.0, 5)])
        assert process.quanta[0].count == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseRateProcess([])
        with pytest.raises(ConfigurationError):
            PiecewiseRateProcess([(0.0, 10)])
        with pytest.raises(ConfigurationError):
            PiecewiseRateProcess([(10.0, 0)])
