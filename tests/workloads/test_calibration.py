"""Calibration tests: the Lucene/Bing workloads match the published
characteristics of Figures 1 and 2 (within tolerance)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scalability import speedup_report
from repro.workloads.bing import TERMINATION_MS, bing_workload
from repro.workloads.lucene import lucene_workload


@pytest.fixture(scope="module")
def lucene_profile():
    return lucene_workload(profile_size=8000).profile


@pytest.fixture(scope="module")
def bing_profile():
    return bing_workload(profile_size=20_000).profile


class TestLuceneCalibration:
    """Figure 2: median 186 ms, mode near 90 ms, tail to ~1000 ms."""

    def test_median_near_published(self, lucene_profile):
        assert lucene_profile.median() == pytest.approx(186.0, rel=0.10)

    def test_heavy_tail(self, lucene_profile):
        assert lucene_profile.percentile(0.99) > 4 * lucene_profile.median()

    def test_mode_bin_in_published_range(self, lucene_profile):
        edges, counts = lucene_profile.histogram(20.0)
        mode_bin = edges[int(np.argmax(counts))]
        assert 40.0 <= mode_bin <= 160.0

    def test_near_linear_speedup_at_degree_two(self, lucene_profile):
        """Figure 2(b): 'almost linear speedup for parallelism degree 2'."""
        assert lucene_profile.average_speedup(2) > 1.55

    def test_speedup_flat_at_five_plus(self, lucene_profile):
        """'not effective for 5 or more degrees'."""
        s5 = lucene_profile.average_speedup(5)
        s6 = lucene_profile.average_speedup(6)
        assert s6 / s5 - 1.0 < 0.05

    def test_long_requests_scale_better(self, lucene_profile):
        rows = {r.degree: r for r in speedup_report(lucene_profile)}
        assert rows[4].longest > 2 * rows[4].shortest / 1.3


class TestBingCalibration:
    """Figure 1: > 80 % below 15 ms, 200 ms termination cap, long
    requests > 2x at degree 3, shorts ~1.2x."""

    def test_mostly_short(self, bing_profile):
        below = float(np.dot(bing_profile.seq < 15.0, bing_profile.weights))
        assert below / bing_profile.total_weight > 0.75

    def test_termination_cap(self, bing_profile):
        assert bing_profile.max() == pytest.approx(TERMINATION_MS)
        # the truncation spike the paper notes at 200 ms
        at_cap = float(np.dot(bing_profile.seq >= TERMINATION_MS - 1e-9,
                              bing_profile.weights))
        assert at_cap > 0

    def test_median_to_p99_gap(self, bing_profile):
        """The paper reports a 27x gap; accept 15-45x."""
        ratio = bing_profile.percentile(0.99) / bing_profile.median()
        assert 15.0 <= ratio <= 45.0

    def test_long_speedup_over_two_at_degree_three(self, bing_profile):
        assert bing_profile.class_speedup(3, 0.95, 1.0) > 2.0

    def test_short_speedup_limited(self, bing_profile):
        assert bing_profile.class_speedup(3, 0.0, 0.05) == pytest.approx(1.2, abs=0.15)

    def test_no_gain_past_degree_four(self, bing_profile):
        s4 = bing_profile.average_speedup(4)
        s5 = bing_profile.average_speedup(5)
        assert s5 / s4 - 1.0 < 0.05


class TestWorkloadInterface:
    def test_profile_is_deterministic(self):
        a = lucene_workload(profile_size=500).profile
        b = lucene_workload(profile_size=500).profile
        assert np.array_equal(a.seq, b.seq)

    def test_arrivals_have_matching_speedups(self):
        from repro.workloads.arrivals import UniformProcess

        wl = bing_workload(profile_size=100)
        arrivals = wl.arrivals(50, UniformProcess(100.0), np.random.default_rng(1))
        assert len(arrivals) == 50
        for spec in arrivals:
            spec.speedup.validate(max_degree=wl.max_degree)
            assert spec.seq_ms > 0

    def test_sample_profile_size(self):
        wl = lucene_workload(profile_size=100)
        p = wl.sample_profile(77, np.random.default_rng(2))
        assert len(p) == 77
