"""Streaming arrival generation (DESIGN.md §14): chunked generation
must be bit-identical to the batch arrays for every chunk size, and
:meth:`PiecewiseRateProcess.quantum_boundaries` must agree exactly with
how :meth:`times_ms` assigns requests to rate quanta."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    PiecewiseRateProcess,
    PoissonProcess,
    UniformProcess,
)
from repro.workloads.lucene import lucene_workload
from repro.workloads.synthetic import DemandDistribution
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.workloads.workload import Workload

_PROCESSES = {
    "poisson": lambda: PoissonProcess(40.0),
    "uniform": lambda: UniformProcess(40.0),
    "piecewise": lambda: PiecewiseRateProcess([(45.0, 37), (30.0, 23)]),
}


def _collect(process, n, seed, chunk_size):
    chunks = list(
        process.iter_times_ms(n, np.random.default_rng(seed), chunk_size=chunk_size)
    )
    assert all(len(c) <= chunk_size for c in chunks)
    assert sum(len(c) for c in chunks) == n
    return np.concatenate(chunks)


class TestChunkedTimesBitIdentity:
    @pytest.mark.parametrize("name", sorted(_PROCESSES))
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 8192])
    def test_chunked_equals_batch(self, name, chunk_size):
        process = _PROCESSES[name]()
        batch = process.times_ms(500, np.random.default_rng(33))
        streamed = _collect(process, 500, seed=33, chunk_size=chunk_size)
        assert np.array_equal(streamed, batch)  # bitwise, not approx

    @pytest.mark.parametrize("name", sorted(_PROCESSES))
    def test_chunk_size_invariance(self, name):
        process = _PROCESSES[name]()
        a = _collect(process, 300, seed=5, chunk_size=1)
        b = _collect(process, 300, seed=5, chunk_size=11)
        assert np.array_equal(a, b)

    def test_base_class_fallback_is_chunked_batch(self):
        class Custom(PoissonProcess):
            # Inherit only the ABC fallback (materialize then slice).
            def iter_times_ms(self, n, rng, chunk_size=8192):
                return super(PoissonProcess, self).iter_times_ms(
                    n, rng, chunk_size=chunk_size
                )

        process = Custom(25.0)
        batch = process.times_ms(100, np.random.default_rng(1))
        streamed = _collect(process, 100, seed=1, chunk_size=13)
        assert np.array_equal(streamed, batch)

    def test_validation(self):
        process = PoissonProcess(40.0)
        with pytest.raises(ConfigurationError):
            list(process.iter_times_ms(0, np.random.default_rng(0)))
        with pytest.raises(ConfigurationError):
            list(process.iter_times_ms(10, np.random.default_rng(0), chunk_size=0))


class TestQuantumBoundaryAgreement:
    """Satellite: the boundary map and the time generator must agree on
    quantum extents — verified by *reconstructing* the batch times from
    the boundaries alone."""

    @given(
        quanta=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=100.0),
                st.integers(min_value=1, max_value=40),
            ),
            min_size=1,
            max_size=4,
        ),
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_boundaries_reconstruct_times(self, quanta, n, seed):
        process = PiecewiseRateProcess(quanta)
        bounds = process.quantum_boundaries(n)

        # The boundaries partition [0, n) contiguously...
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        assert all(b[0] == a[1] for a, b in zip(bounds, bounds[1:]))
        # ...cycling through the quanta, truncating only the last.
        for i, (start, stop) in enumerate(bounds):
            expected = quanta[i % len(quanta)][1]
            assert stop - start == expected or (
                i == len(bounds) - 1 and stop - start < expected
            )

        # Drawing each boundary's gaps at its quantum's rate replays the
        # exact RNG stream of times_ms — bitwise equality proves the two
        # views agree on which request belongs to which quantum.
        rng = np.random.default_rng(seed)
        gaps = np.concatenate(
            [
                rng.exponential(
                    1000.0 / quanta[i % len(quanta)][0], size=stop - start
                )
                for i, (start, stop) in enumerate(bounds)
            ]
        )
        assert np.array_equal(
            np.cumsum(gaps), process.times_ms(n, np.random.default_rng(seed))
        )

    @given(
        n=st.integers(min_value=1, max_value=300),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_streamed_times_respect_boundaries(self, n, chunk_size):
        """iter_times_ms crossing quantum boundaries mid-chunk must
        still match the batch draw (stream-sequential RNG property)."""
        process = PiecewiseRateProcess([(45.0, 17), (30.0, 5), (60.0, 9)])
        batch = process.times_ms(n, np.random.default_rng(n))
        streamed = _collect(process, n, seed=n, chunk_size=chunk_size)
        assert np.array_equal(streamed, batch)


def _workload():
    return Workload(
        name="stream-test",
        sampler=DemandDistribution([(1.0, 3.0, 0.6)], floor_ms=1.0),
        speedup_model=UniformSpeedupModel(TabulatedSpeedup([1.0, 1.8, 2.4, 2.9])),
        max_degree=4,
    )


class TestArrivalStream:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 8192])
    def test_chunk_size_invariance(self, chunk_size):
        """The trace is a function of (workload, process, n, seed) only —
        demand draws are pinned to fixed blocks, so the consumer's
        chunk_size never changes a single float."""
        workload = _workload()
        reference = list(
            workload.arrival_stream(200, PoissonProcess(40.0), seed=11)
        )
        streamed = list(
            workload.arrival_stream(
                200, PoissonProcess(40.0), seed=11, chunk_size=chunk_size
            )
        )
        assert len(streamed) == 200
        assert [(a.time_ms, a.seq_ms) for a in streamed] == [
            (a.time_ms, a.seq_ms) for a in reference
        ]

    def test_times_nondecreasing_and_demands_floored(self):
        specs = list(_workload().arrival_stream(300, PoissonProcess(80.0), seed=3))
        times = [a.time_ms for a in specs]
        assert times == sorted(times)
        assert all(a.seq_ms >= 1.0 for a in specs)

    def test_lucene_workload_streams(self):
        workload = lucene_workload(profile_size=50)
        specs = list(workload.arrival_stream(64, PoissonProcess(30.0), seed=1))
        assert len(specs) == 64
        assert all(a.seq_ms > 0 for a in specs)

    def test_lazy_generation(self):
        """Consuming k arrivals must not materialize all n."""
        stream = _workload().arrival_stream(10**9, PoissonProcess(40.0), seed=0)
        head = [next(stream) for _ in range(5)]
        assert len(head) == 5
        assert head[0].time_ms > 0.0
