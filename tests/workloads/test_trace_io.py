"""Tests for trace persistence and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.schedulers import SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate
from repro.workloads.trace_io import load_trace, save_trace, trace_to_profile

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0])


def _trace(n: int = 5) -> list[ArrivalSpec]:
    return [ArrivalSpec(10.0 * i, 20.0 + i, _CURVE) for i in range(n)]


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert save_trace(_trace(), path, max_degree=3) == 5
        loaded = load_trace(path)
        assert len(loaded) == 5
        for original, back in zip(_trace(), loaded):
            assert back.time_ms == original.time_ms
            assert back.seq_ms == original.seq_ms
            assert back.speedup.table(3) == pytest.approx(original.speedup.table(3))

    def test_replay_is_identical(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(_trace(20), path)
        a = simulate(_trace(20), SequentialScheduler(), cores=2)
        b = simulate(load_trace(path), SequentialScheduler(), cores=2)
        assert a.latencies_ms() == pytest.approx(b.latencies_ms())

    def test_load_sorts_by_arrival(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        specs = [ArrivalSpec(50.0, 10.0, _CURVE), ArrivalSpec(5.0, 10.0, _CURVE)]
        save_trace(specs, path)
        loaded = load_trace(path)
        assert loaded[0].time_ms == 5.0

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(_trace(2), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 2


class TestValidation:
    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace([], tmp_path / "x.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time_ms": 1.0}\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            load_trace(path)


class TestTraceToProfile:
    def test_profile_fields(self):
        profile = trace_to_profile(_trace(4), max_degree=3)
        assert len(profile) == 4
        assert profile.max_degree == 3
        assert np.all(profile.speedups[:, 2] == 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_to_profile([], max_degree=2)
