"""Tests for parametric demand distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.synthetic import (
    DemandDistribution,
    LognormalComponent,
    bimodal_distribution,
)


class TestLognormalComponent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LognormalComponent(0.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            LognormalComponent(1.0, -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            LognormalComponent(1.0, 10.0, -0.1)


class TestDemandDistribution:
    def test_median_of_single_component(self):
        dist = DemandDistribution([LognormalComponent(1.0, 50.0, 0.6)])
        samples = dist.sample(np.random.default_rng(1), 40_000)
        assert np.median(samples) == pytest.approx(50.0, rel=0.05)

    def test_cap_truncates(self):
        dist = DemandDistribution([(1.0, 100.0, 1.0)], cap_ms=150.0)
        samples = dist.sample(np.random.default_rng(2), 5000)
        assert samples.max() <= 150.0
        # The truncation spike exists (Figure 1(a)'s rise at 200 ms).
        assert (samples == 150.0).mean() > 0.05

    def test_floor_applies(self):
        dist = DemandDistribution([(1.0, 1.0, 2.0)], floor_ms=0.5)
        samples = dist.sample(np.random.default_rng(3), 5000)
        assert samples.min() >= 0.5

    def test_mixture_weights(self):
        dist = DemandDistribution(
            [(0.9, 5.0, 0.0), (0.1, 500.0, 0.0)]  # sigma 0: point masses
        )
        samples = dist.sample(np.random.default_rng(4), 20_000)
        assert (samples == 500.0).mean() == pytest.approx(0.1, abs=0.01)

    def test_callable_interface(self):
        dist = DemandDistribution([(1.0, 10.0, 0.5)])
        samples = dist(np.random.default_rng(5), 10)
        assert len(samples) == 10

    def test_determinism(self):
        dist = DemandDistribution([(1.0, 10.0, 0.5)])
        a = dist.sample(np.random.default_rng(6), 100)
        b = dist.sample(np.random.default_rng(6), 100)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandDistribution([])
        with pytest.raises(ConfigurationError):
            DemandDistribution([(1.0, 10.0, 0.5)], cap_ms=0.01, floor_ms=0.1)
        with pytest.raises(ConfigurationError):
            DemandDistribution([(1.0, 10.0, 0.5)]).sample(np.random.default_rng(0), 0)


class TestBimodal:
    def test_two_point_masses(self):
        dist = bimodal_distribution(50.0, 150.0, long_fraction=0.5)
        samples = dist.sample(np.random.default_rng(7), 1000)
        assert set(np.unique(samples)) == {50.0, 150.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bimodal_distribution(50.0, 150.0, long_fraction=1.0)
