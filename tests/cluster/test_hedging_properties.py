"""Property tests for the redundancy latency arithmetic.

:func:`~repro.cluster.hedging.hedged_latency` and
:func:`~repro.cluster.hedging.resolve_retries` are pure functions, so
the invariants the cluster simulation leans on — redundancy never
makes a shard *slower*, and every resolved latency splits additively
into (redundancy wait) + (winning attempt's own latency) — are checked
over generated inputs rather than hand-picked examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hedging import (
    RetryPolicy,
    hedged_latency,
    latency_with_retries,
    resolve_retries,
)

_LATENCY = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
_ATTEMPTS = st.lists(_LATENCY, min_size=1, max_size=6)
_TIMEOUT = st.floats(min_value=0.1, max_value=1e3, allow_nan=False)
_RETRIES = st.integers(min_value=0, max_value=5)
_BACKOFF = st.floats(min_value=1.0, max_value=4.0, allow_nan=False)


class TestHedgedLatency:
    @settings(max_examples=200)
    @given(primary=_LATENCY, replica=_LATENCY, delay=_LATENCY)
    def test_never_slower_than_the_primary(self, primary, replica, delay):
        latency, sent = hedged_latency(primary, replica, delay)
        assert latency <= primary + 1e-9

    @settings(max_examples=200)
    @given(primary=_LATENCY, replica=_LATENCY, delay=_LATENCY)
    def test_hedge_fires_iff_primary_outlives_the_delay(
        self, primary, replica, delay
    ):
        latency, sent = hedged_latency(primary, replica, delay)
        if sent:
            assert primary > delay
            assert latency == min(primary, delay + replica)
        else:
            assert primary <= delay
            assert latency == primary


class TestRetryResolution:
    @settings(max_examples=200)
    @given(attempts=_ATTEMPTS, timeout=_TIMEOUT, retries=_RETRIES, backoff=_BACKOFF)
    def test_never_slower_than_the_original(
        self, attempts, timeout, retries, backoff
    ):
        policy = RetryPolicy(
            timeout_ms=timeout, max_retries=retries, backoff=backoff
        )
        resolution = resolve_retries(attempts, policy)
        assert resolution.latency_ms <= attempts[0] + 1e-9
        assert resolution.retries <= min(retries, len(attempts) - 1)

    @settings(max_examples=200)
    @given(attempts=_ATTEMPTS, timeout=_TIMEOUT, retries=_RETRIES, backoff=_BACKOFF)
    def test_latency_splits_into_wait_plus_winner(
        self, attempts, timeout, retries, backoff
    ):
        """``latency - redundancy_wait`` is the winning attempt's own
        latency — the additive attribution the cluster.attr.* split
        relies on."""
        policy = RetryPolicy(
            timeout_ms=timeout, max_retries=retries, backoff=backoff
        )
        resolution = resolve_retries(attempts, policy)
        winner_own = resolution.latency_ms - resolution.redundancy_wait_ms
        assert winner_own == pytest.approx(attempts[resolution.winner], abs=1e-9)
        if resolution.winner == 0:
            assert resolution.redundancy_wait_ms == 0.0

    @settings(max_examples=200)
    @given(attempts=_ATTEMPTS, timeout=_TIMEOUT, retries=_RETRIES)
    def test_backoff_one_is_a_fixed_interval_ladder(
        self, attempts, timeout, retries
    ):
        """With ``backoff=1.0`` attempt k is issued at exactly
        ``k * timeout``, so the winner's wait is that multiple."""
        policy = RetryPolicy(timeout_ms=timeout, max_retries=retries, backoff=1.0)
        resolution = resolve_retries(attempts, policy)
        assert resolution.redundancy_wait_ms == pytest.approx(
            resolution.winner * timeout, abs=1e-9
        )

    @settings(max_examples=100)
    @given(attempts=_ATTEMPTS, timeout=_TIMEOUT, backoff=_BACKOFF)
    def test_max_retries_zero_never_resends(self, attempts, timeout, backoff):
        policy = RetryPolicy(timeout_ms=timeout, max_retries=0, backoff=backoff)
        resolution = resolve_retries(attempts, policy)
        assert resolution.retries == 0
        assert resolution.winner == 0
        assert resolution.redundancy_wait_ms == 0.0
        assert resolution.latency_ms == attempts[0]

    @settings(max_examples=100)
    @given(attempts=_ATTEMPTS, timeout=_TIMEOUT, retries=_RETRIES, backoff=_BACKOFF)
    def test_two_tuple_view_agrees(self, attempts, timeout, retries, backoff):
        policy = RetryPolicy(
            timeout_ms=timeout, max_retries=retries, backoff=backoff
        )
        resolution = resolve_retries(attempts, policy)
        assert latency_with_retries(attempts, policy) == (
            resolution.latency_ms,
            resolution.retries,
        )
