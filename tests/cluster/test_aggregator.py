"""Tests for fan-out aggregation math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.aggregator import (
    achieved_cluster_percentile,
    aggregate_latencies,
    cluster_tail,
    required_per_server_percentile,
)
from repro.errors import ConfigurationError


class TestAnalytics:
    def test_paper_rule_of_thumb(self):
        """Section 7: 10 ISNs, 90 % cluster target -> ~99 % per ISN."""
        assert required_per_server_percentile(0.9, 10) == pytest.approx(0.9895, abs=1e-3)

    def test_single_server_is_identity(self):
        assert required_per_server_percentile(0.9, 1) == pytest.approx(0.9)
        assert achieved_cluster_percentile(0.9, 1) == pytest.approx(0.9)

    def test_inverse_relationship(self):
        per_server = required_per_server_percentile(0.9, 40)
        assert achieved_cluster_percentile(per_server, 40) == pytest.approx(0.9)

    def test_more_servers_need_tighter_tails(self):
        values = [required_per_server_percentile(0.9, n) for n in (1, 10, 100)]
        assert values[0] < values[1] < values[2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_per_server_percentile(1.0, 10)
        with pytest.raises(ConfigurationError):
            required_per_server_percentile(0.9, 0)
        with pytest.raises(ConfigurationError):
            achieved_cluster_percentile(0.0, 10)


class TestMonteCarlo:
    def test_max_of_draws(self):
        rng = np.random.default_rng(1)
        sample = np.array([10.0, 20.0])
        maxima = aggregate_latencies(sample, num_servers=8, num_queries=3000, rng=rng)
        # With 8 draws from {10, 20}, nearly every query sees a 20.
        assert (maxima == 20.0).mean() > 0.95

    def test_single_server_preserves_distribution(self):
        rng = np.random.default_rng(2)
        sample = np.arange(1.0, 101.0)
        maxima = aggregate_latencies(sample, 1, 20_000, rng)
        assert np.mean(maxima) == pytest.approx(sample.mean(), rel=0.05)

    def test_cluster_tail_grows_with_fanout(self):
        rng = np.random.default_rng(3)
        sample = np.random.default_rng(0).lognormal(3.0, 1.0, size=5000)
        tails = [cluster_tail(sample, n, 0.9, rng) for n in (1, 10, 50)]
        assert tails[0] < tails[1] < tails[2]

    def test_cluster_tail_bounded_by_sample_max(self):
        rng = np.random.default_rng(4)
        sample = np.random.default_rng(1).uniform(1.0, 100.0, size=1000)
        assert cluster_tail(sample, 100, 0.99, rng) <= sample.max()

    def test_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ConfigurationError):
            aggregate_latencies(np.array([]), 2, 10, rng)
        with pytest.raises(ConfigurationError):
            aggregate_latencies(np.array([1.0]), 0, 10, rng)
