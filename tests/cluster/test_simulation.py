"""Tests for the true multi-ISN cluster simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.simulation import simulate_cluster
from repro.errors import ConfigurationError
from repro.schedulers import SequentialScheduler
from repro.workloads.arrivals import UniformProcess


class TestSimulateCluster:
    def _run(self, tiny_workload, num_servers=4, num_queries=60):
        return simulate_cluster(
            scheduler_factory=SequentialScheduler,
            workload=tiny_workload,
            num_servers=num_servers,
            num_queries=num_queries,
            process=UniformProcess(50.0),
            cores=4,
            seed=1,
        )

    def test_shapes(self, tiny_workload):
        result = self._run(tiny_workload)
        assert result.query_latencies_ms.shape == (60,)
        assert len(result.server_latencies_ms) == 4
        assert all(lats.shape == (60,) for lats in result.server_latencies_ms)

    def test_cluster_latency_is_max_over_shards(self, tiny_workload):
        result = self._run(tiny_workload)
        stacked = np.stack(result.server_latencies_ms)
        assert np.allclose(result.query_latencies_ms, stacked.max(axis=0))

    def test_cluster_tail_dominates_server_tail(self, tiny_workload):
        result = self._run(tiny_workload, num_servers=6)
        assert result.cluster_tail_ms(0.9) >= result.server_tail_ms(0.9)

    def test_single_server_degenerates(self, tiny_workload):
        result = self._run(tiny_workload, num_servers=1)
        assert np.allclose(
            result.query_latencies_ms, result.server_latencies_ms[0]
        )

    def test_deterministic(self, tiny_workload):
        a = self._run(tiny_workload)
        b = self._run(tiny_workload)
        assert np.array_equal(a.query_latencies_ms, b.query_latencies_ms)

    def test_same_seed_is_bit_identical_everywhere(self, tiny_workload):
        """Not just the cluster max: every per-server latency array
        replays bit-for-bit under the same seed."""
        a = self._run(tiny_workload)
        b = self._run(tiny_workload)
        for lat_a, lat_b in zip(a.server_latencies_ms, b.server_latencies_ms):
            assert np.array_equal(lat_a, lat_b)

    def test_different_seeds_produce_different_latencies(self, tiny_workload):
        def run(seed):
            return simulate_cluster(
                scheduler_factory=SequentialScheduler,
                workload=tiny_workload,
                num_servers=4,
                num_queries=60,
                process=UniformProcess(50.0),
                cores=4,
                seed=seed,
            )

        a, b = run(1), run(2)
        assert not np.array_equal(a.query_latencies_ms, b.query_latencies_ms)

    def test_validation(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            simulate_cluster(
                SequentialScheduler, tiny_workload, num_servers=0,
                num_queries=10, process=UniformProcess(10.0), cores=2,
            )
        with pytest.raises(ConfigurationError):
            simulate_cluster(
                SequentialScheduler, tiny_workload, num_servers=2,
                num_queries=0, process=UniformProcess(10.0), cores=2,
            )
