"""Hedged requests, retries, and the robust cluster simulation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster.hedging import (
    HedgePolicy,
    RetryPolicy,
    hedged_latency,
    latency_with_retries,
)
from repro.cluster.simulation import simulate_cluster, simulate_cluster_robust
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.schedulers import SequentialScheduler
from repro.workloads.arrivals import UniformProcess


class TestHedgePolicy:
    def test_exactly_one_delay_mode(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy()
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay_ms=10.0, delay_percentile=0.95)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay_ms=-1.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay_percentile=1.0)

    def test_fixed_delay_resolves_to_itself(self):
        assert HedgePolicy(delay_ms=12.5).resolve_delay_ms([1.0]) == 12.5

    def test_percentile_resolves_against_marginal(self):
        lats = np.arange(1.0, 101.0)
        delay = HedgePolicy(delay_percentile=0.95).resolve_delay_ms(lats)
        assert delay == pytest.approx(np.quantile(lats, 0.95))

    def test_percentile_on_empty_sample_is_nan(self):
        # Control-surface contract (telemetry/histogram.py): a cold
        # rolling window resolves to nan, and a `latency > nan` hedge
        # trigger is inert — never raise mid-run.
        delay = HedgePolicy(delay_percentile=0.9).resolve_delay_ms([])
        assert math.isnan(delay)

    def test_fixed_delay_ignores_empty_sample(self):
        assert HedgePolicy(delay_ms=7.0).resolve_delay_ms([]) == 7.0


class TestHedgedLatency:
    def test_fast_primary_sends_no_hedge(self):
        assert hedged_latency(5.0, 1.0, delay_ms=10.0) == (5.0, False)

    def test_slow_primary_hedges_and_first_response_wins(self):
        latency, sent = hedged_latency(100.0, 20.0, delay_ms=10.0)
        assert sent
        assert latency == pytest.approx(30.0)  # delay + replica

    def test_primary_can_still_win_after_hedging(self):
        latency, sent = hedged_latency(40.0, 500.0, delay_ms=10.0)
        assert sent
        assert latency == pytest.approx(40.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ms=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ms=10.0, max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ms=10.0, backoff=0.5)

    def test_zero_retries_is_timeout_accounting_only(self):
        # max_retries=0 expresses "never re-send": the original attempt
        # always wins, no matter how badly it blows the timeout.
        policy = RetryPolicy(timeout_ms=10.0, max_retries=0)
        latency, retries = latency_with_retries([5000.0, 1.0], policy)
        assert (latency, retries) == (5000.0, 0)

    def test_fast_answer_never_retries(self):
        policy = RetryPolicy(timeout_ms=50.0)
        assert latency_with_retries([10.0, 1.0], policy) == (10.0, 0)

    def test_retry_improves_a_timed_out_shard(self):
        policy = RetryPolicy(timeout_ms=50.0)
        latency, retries = latency_with_retries([1000.0, 10.0], policy)
        assert retries == 1
        assert latency == pytest.approx(60.0)  # issued at 50 + 10

    def test_original_attempt_is_not_cancelled(self):
        policy = RetryPolicy(timeout_ms=50.0)
        latency, retries = latency_with_retries([70.0, 400.0], policy)
        assert retries == 1
        assert latency == pytest.approx(70.0)

    def test_exponential_backoff_issue_times(self):
        policy = RetryPolicy(timeout_ms=10.0, max_retries=2, backoff=3.0)
        # Retries issue at 10 and 10 + 30 = 40.
        latency, retries = latency_with_retries([1000.0, 1000.0, 5.0], policy)
        assert retries == 2
        assert latency == pytest.approx(45.0)

    def test_needs_an_attempt(self):
        with pytest.raises(ConfigurationError):
            latency_with_retries([], RetryPolicy(timeout_ms=10.0))


class TestSimulateClusterRobust:
    def _run(self, tiny_workload, **kwargs):
        return simulate_cluster_robust(
            scheduler_factory=SequentialScheduler,
            workload=tiny_workload,
            num_servers=3,
            num_queries=50,
            process=UniformProcess(60.0),
            cores=4,
            seed=2,
            **kwargs,
        )

    def test_no_mitigations_matches_plain_cluster(self, tiny_workload):
        """With every robustness feature off, the robust path is
        bit-identical to simulate_cluster (same RNG stream)."""
        robust = self._run(tiny_workload)
        plain = simulate_cluster(
            scheduler_factory=SequentialScheduler,
            workload=tiny_workload,
            num_servers=3,
            num_queries=50,
            process=UniformProcess(60.0),
            cores=4,
            seed=2,
        )
        assert np.array_equal(robust.query_latencies_ms, plain.query_latencies_ms)
        assert robust.mean_quality() == 1.0
        assert robust.hedges_sent == 0

    def test_deterministic_with_full_stack(self, tiny_workload):
        kwargs = dict(
            fault_plan_factory=lambda i: FaultPlan(straggler_rate=0.3, seed=10 + i),
            hedge=HedgePolicy(delay_percentile=0.9),
            retry=RetryPolicy(timeout_ms=400.0),
            deadline_ms=500.0,
        )
        a = self._run(tiny_workload, **kwargs)
        b = self._run(tiny_workload, **kwargs)
        assert np.array_equal(a.query_latencies_ms, b.query_latencies_ms)
        assert np.array_equal(a.quality, b.quality)
        assert (a.hedges_sent, a.retries_sent) == (b.hedges_sent, b.retries_sent)
        assert a.server_fault_stats == b.server_fault_stats

    def test_hedging_never_raises_the_max_over_shards(self, tiny_workload):
        base = self._run(tiny_workload)
        hedged = self._run(tiny_workload, hedge=HedgePolicy(delay_percentile=0.8))
        assert hedged.hedges_sent > 0
        assert hedged.hedge_delay_ms is not None
        assert np.all(
            hedged.raw_query_latencies_ms <= base.raw_query_latencies_ms + 1e-9
        )

    def test_deadline_caps_latency_and_scores_quality(self, tiny_workload):
        run = self._run(tiny_workload, deadline_ms=100.0)
        assert np.all(run.query_latencies_ms <= 100.0 + 1e-9)
        assert np.all((run.quality >= 0.0) & (run.quality <= 1.0))
        # Quality is the per-query fraction of shards inside the deadline.
        stacked = np.stack(run.server_latencies_ms)
        assert np.allclose(run.quality, (stacked <= 100.0).mean(axis=0))
        assert 0.0 < run.full_answer_fraction() <= 1.0

    def test_stragglers_raise_the_tail(self, tiny_workload):
        base = self._run(tiny_workload)
        frail = self._run(
            tiny_workload,
            fault_plan_factory=lambda i: FaultPlan(
                straggler_rate=0.4, straggler_mu=1.0, seed=i
            ),
        )
        assert frail.cluster_tail_ms(0.95) > base.cluster_tail_ms(0.95)
        assert sum(s["stragglers_injected"] for s in frail.server_fault_stats) > 0

    def test_retries_fire_on_timeouts(self, tiny_workload):
        run = self._run(
            tiny_workload,
            fault_plan_factory=lambda i: FaultPlan(
                straggler_rate=0.4, straggler_mu=1.5, seed=i
            ),
            retry=RetryPolicy(timeout_ms=150.0),
        )
        assert run.retries_sent > 0

    def test_validation(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            self._run(tiny_workload, deadline_ms=0.0)
