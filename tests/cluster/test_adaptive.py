"""Adaptive replication controller: mode machine, hysteresis, signals.

The controller is clock-free and pure in its observation stream, so
every behavior here is asserted by feeding synthetic completions with
explicit timestamps — no simulator, no threads, no wall clock.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.adaptive import (
    MODES,
    AdaptiveReplicationController,
    ControllerConfig,
)
from repro.errors import ConfigurationError
from repro.observe import SLOMonitor, SLOTarget


def _controller(**overrides) -> AdaptiveReplicationController:
    """A 1-core, 100 ms-window controller (utilization arithmetic in
    the tests is then ``busy_ms / 100``)."""
    config = dict(window_ms=100.0, cores=1)
    config.update(overrides)
    return AdaptiveReplicationController(ControllerConfig(**config))


def _feed_window(
    controller: AdaptiveReplicationController,
    utilization: float,
    start_ms: float,
    latency_ms: float = 10.0,
    samples: int = 4,
) -> None:
    """Observations spanning one window at the requested utilization.

    The window *closes* when a later observation (or flush) crosses its
    end — feeding windows back to back steps the state machine once per
    window.  Latency defaults far under the private 250 ms SLO target
    and ``samples`` under ``min_samples`` so the SLO signal stays cold
    unless a test wants it hot.
    """
    cfg = controller.config
    busy = utilization * cfg.cores * cfg.window_ms / samples
    for i in range(samples):
        controller.observe(
            latency_ms,
            at_ms=start_ms + i * cfg.window_ms / samples,
            busy_ms=busy,
        )


class TestConfigValidation:
    def test_threshold_ordering(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(steady_at=0.7, hedge_shed_at=0.5)
        with pytest.raises(ConfigurationError):
            ControllerConfig(brownout_at=0.6, hedge_shed_at=0.7)

    def test_basic_knobs(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(window_ms=0.0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(cores=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(hold_windows=0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(hysteresis=-0.1)

    def test_mode_maps(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(hedge_percentile={"bogus": 0.5})
        with pytest.raises(ConfigurationError):
            ControllerConfig(hedge_percentile={"eager": 1.5})
        with pytest.raises(ConfigurationError):
            ControllerConfig(max_retries={"eager": 1})  # missing modes
        with pytest.raises(ConfigurationError):
            ControllerConfig(breach_floor="panic")

    def test_smoothing_range(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(utilization_smoothing=1.0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(utilization_smoothing=-0.2)
        ControllerConfig(utilization_smoothing=0.75)  # valid

    def test_observation_validation(self):
        controller = _controller()
        with pytest.raises(ConfigurationError):
            controller.observe(-1.0, at_ms=0.0)
        with pytest.raises(ConfigurationError):
            controller.observe(1.0, at_ms=0.0, busy_ms=-1.0)


class TestColdStart:
    def test_no_redundancy_before_first_window(self):
        controller = _controller()
        decision = controller.decision
        assert controller.mode == "steady"
        assert decision.hedge_delay_ms is None
        assert decision.retry is None
        assert decision.hedge_budget == 0.0
        assert not decision.redundancy_enabled
        assert controller.windows_observed == 0
        assert math.isnan(controller.last_utilization)

    def test_flush_without_observations_is_noop(self):
        controller = _controller()
        controller.flush(1e6)
        assert controller.windows_observed == 0
        assert controller.transition_signature() == ()


class TestEscalation:
    def test_utilization_ramp_climbs_the_modes(self):
        controller = _controller()
        for i, util in enumerate((0.5, 0.75, 0.95)):
            _feed_window(controller, util, start_ms=i * 100.0)
        controller.flush(300.0)
        assert controller.mode == "brownout"
        reasons = [t.reason for t in controller.transitions]
        assert reasons == ["utilization", "utilization"]
        assert [t.to_mode for t in controller.transitions] == [
            "hedge_shed", "brownout",
        ]
        assert controller.brownout_entries == 1

    def test_escalation_can_jump_modes(self):
        controller = _controller()
        # Two calm windows recover steady -> eager first.
        _feed_window(controller, 0.1, 0.0)
        _feed_window(controller, 0.1, 100.0)
        _feed_window(controller, 0.1, 200.0)
        assert controller.mode == "eager"
        # One saturated window jumps straight to brownout.
        _feed_window(controller, 1.2, 300.0)
        controller.flush(400.0)
        last = controller.transitions[-1]
        assert (last.from_mode, last.to_mode) == ("eager", "brownout")

    def test_decisions_track_modes(self):
        controller = _controller()
        _feed_window(controller, 0.1, 0.0)
        _feed_window(controller, 0.1, 100.0)
        _feed_window(controller, 0.1, 200.0)
        assert controller.mode == "eager"
        decision = controller.decision
        assert decision.hedge_delay_ms is not None
        assert decision.hedge_percentile == pytest.approx(0.80)
        assert decision.hedge_budget == pytest.approx(0.20)
        assert decision.retry is not None and decision.retry.max_retries == 2
        _feed_window(controller, 1.2, 300.0)
        controller.flush(400.0)
        decision = controller.decision
        assert decision.mode == "brownout"
        assert decision.hedge_delay_ms is None
        assert decision.retry is not None
        assert decision.retry.max_retries == 0  # timeout accounting only
        assert not decision.redundancy_enabled


class TestHysteresis:
    def _escalated(self) -> AdaptiveReplicationController:
        controller = _controller()
        _feed_window(controller, 0.75, 0.0)
        _feed_window(controller, 0.75, 100.0)
        assert controller.mode == "hedge_shed"
        return controller

    def test_inside_the_hysteresis_band_never_recovers(self):
        controller = self._escalated()
        # 0.65 is below the 0.70 entry threshold but above 0.70 - 0.08.
        for i in range(2, 8):
            _feed_window(controller, 0.65, i * 100.0)
        controller.flush(800.0)
        assert controller.mode == "hedge_shed"

    def test_recovery_steps_one_mode_after_hold_windows(self):
        controller = self._escalated()
        _feed_window(controller, 0.55, 200.0)
        _feed_window(controller, 0.55, 300.0)
        controller.flush(400.0)  # second qualifying window closes here
        assert controller.mode == "steady"  # one step, not straight to eager
        assert controller.transitions[-1].reason == "recovery"

    def test_oscillation_across_the_band_resets_the_hold(self):
        controller = self._escalated()
        # Alternate qualifying / non-qualifying windows: the hold
        # counter never reaches hold_windows=2, so no recovery.
        for i, util in enumerate((0.55, 0.65, 0.55, 0.65, 0.55, 0.65)):
            _feed_window(controller, util, (i + 2) * 100.0)
        controller.flush(800.0)
        assert controller.mode == "hedge_shed"


class TestSLOSignals:
    def test_burn_rate_trips_brownout_at_low_utilization(self):
        # Latencies 4x over the private 250 ms p99 target; offered-work
        # utilization is tiny (the capacity was reclaimed, not filled).
        controller = _controller()
        _feed_window(controller, 0.1, 0.0, latency_ms=1000.0, samples=12)
        controller.flush(100.0)
        assert controller.mode == "brownout"
        assert controller.transitions[-1].reason == "burn_rate"

    def test_breach_without_page_rate_floors_at_hedge_shed(self):
        controller = _controller(brownout_burn_rate=1e9)
        _feed_window(controller, 0.1, 0.0, latency_ms=1000.0, samples=12)
        controller.flush(100.0)
        assert controller.mode == "hedge_shed"
        assert controller.transitions[-1].reason == "breach"

    def test_shared_monitor_is_fed_by_observe(self):
        slo = SLOMonitor(
            SLOTarget(percentile=0.99, threshold_ms=250.0),
            short_window_ms=200.0,
            long_window_ms=800.0,
            min_samples=3,
        )
        controller = AdaptiveReplicationController(
            ControllerConfig(window_ms=100.0, cores=1), slo=slo
        )
        _feed_window(controller, 0.1, 0.0, samples=6)
        assert slo.status(at_ms=90.0).long_count == 6


class TestSignalConditioning:
    def test_window_grid_anchors_at_first_observation(self):
        controller = _controller()
        _feed_window(controller, 0.2, 1e9)
        _feed_window(controller, 0.2, 1e9 + 100.0)
        controller.flush(1e9 + 200.0)
        # A wall-clock-sized origin must not replay ten million idle
        # windows before the first real one.
        assert controller.windows_observed == 2

    def test_smoothing_absorbs_a_single_spike_window(self):
        raw = _controller()
        smoothed = _controller(utilization_smoothing=0.9)
        for controller in (raw, smoothed):
            _feed_window(controller, 0.2, 0.0)
            _feed_window(controller, 0.2, 100.0)
            _feed_window(controller, 5.0, 200.0)  # one heavy-tailed burst
            controller.flush(300.0)
        assert raw.mode == "brownout"
        assert smoothed.mode in ("eager", "steady")
        assert smoothed.last_utilization < raw.last_utilization

    def test_sustained_overload_crosses_despite_smoothing(self):
        controller = _controller(utilization_smoothing=0.5)
        for i in range(6):
            _feed_window(controller, 1.2, i * 100.0)
        controller.flush(600.0)
        assert controller.mode == "brownout"


class TestDeterminismAndReset:
    def _drive(self, controller: AdaptiveReplicationController) -> None:
        for i, util in enumerate((0.2, 0.5, 0.8, 1.1, 0.3, 0.3, 0.3, 0.3)):
            _feed_window(controller, util, i * 100.0)
        controller.flush(800.0)

    def test_replay_is_bit_identical(self):
        controller = _controller()
        self._drive(controller)
        first = controller.transition_signature()
        assert first  # the drive actually transitions
        controller.reset()
        self._drive(controller)
        assert controller.transition_signature() == first

    def test_reset_clears_all_state(self):
        controller = _controller()
        self._drive(controller)
        controller.reset()
        assert controller.mode == "steady"
        assert controller.windows_observed == 0
        assert controller.transitions == []
        assert math.isnan(controller.last_utilization)
        assert controller.decision.hedge_delay_ms is None


class TestTelemetry:
    def test_counters_and_gauges(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        controller = AdaptiveReplicationController(
            ControllerConfig(window_ms=100.0, cores=1), telemetry=telemetry
        )
        _feed_window(controller, 0.95, 0.0)
        _feed_window(controller, 0.95, 100.0)
        controller.flush(200.0)
        metrics = telemetry.metrics
        assert metrics.counter("cluster.adaptive.windows").value == 2
        assert metrics.counter("cluster.adaptive.mode_transitions").value >= 1
        assert metrics.counter("cluster.adaptive.brownouts").value == 1
        gauges = metrics.gauges
        assert gauges["cluster.adaptive.mode"].value == float(
            MODES.index("brownout")
        )
        assert gauges["cluster.adaptive.hedge_budget"].value == 0.0
        assert gauges["cluster.adaptive.utilization"].value > 0.9
