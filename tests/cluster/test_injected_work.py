"""Retry-load accounting: redundancy's offered work is a visible metric.

ROADMAP flagged that static hedge/retry comparisons past the knee are
dishonest unless the *extra offered work* each policy injects is on the
books.  ``RobustClusterResult.injected_work_ms`` (and the
``cluster.retry.injected_work`` counter) now carries it — pure
accounting, no behavior change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hedging import HedgePolicy, RetryPolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.faults import FaultPlan
from repro.schedulers import SequentialScheduler
from repro.telemetry import Telemetry
from repro.workloads.arrivals import UniformProcess


def _run(tiny_workload, **kwargs):
    return simulate_cluster_robust(
        scheduler_factory=SequentialScheduler,
        workload=tiny_workload,
        num_servers=3,
        num_queries=50,
        process=UniformProcess(60.0),
        cores=4,
        seed=2,
        **kwargs,
    )


class TestInjectedWork:
    def test_zero_without_redundancy(self, tiny_workload):
        run = _run(tiny_workload)
        assert run.hedges_sent == 0 and run.retries_sent == 0
        assert run.injected_work_ms == 0.0

    def test_spare_hedging_accounts_replica_demand(self, tiny_workload):
        run = _run(tiny_workload, hedge=HedgePolicy(delay_percentile=0.8))
        assert run.hedges_sent > 0
        assert run.injected_work_ms > 0.0
        assert np.isfinite(run.injected_work_ms)

    def test_shared_hedging_accounts_neighbor_demand(self, tiny_workload):
        run = _run(
            tiny_workload,
            hedge=HedgePolicy(delay_percentile=0.8),
            replica_mode="shared",
        )
        assert run.hedges_sent > 0
        assert run.injected_work_ms > 0.0

    def test_retries_account_repeated_demand(self, tiny_workload):
        run = _run(
            tiny_workload,
            fault_plan_factory=lambda i: FaultPlan(
                straggler_rate=0.4, straggler_mu=1.5, seed=i
            ),
            retry=RetryPolicy(timeout_ms=150.0),
        )
        assert run.retries_sent > 0
        assert run.injected_work_ms > 0.0

    def test_more_aggressive_hedging_injects_more_work(self, tiny_workload):
        mild = _run(tiny_workload, hedge=HedgePolicy(delay_percentile=0.95))
        eager = _run(tiny_workload, hedge=HedgePolicy(delay_percentile=0.5))
        assert eager.hedges_sent >= mild.hedges_sent
        assert eager.injected_work_ms >= mild.injected_work_ms

    def test_counter_export_matches_result(self, tiny_workload):
        telemetry = Telemetry()
        run = _run(
            tiny_workload,
            hedge=HedgePolicy(delay_percentile=0.8),
            telemetry=telemetry,
        )
        counter = telemetry.metrics.counter("cluster.retry.injected_work")
        assert counter.value == pytest.approx(run.injected_work_ms)

    def test_deterministic(self, tiny_workload):
        kwargs = dict(
            hedge=HedgePolicy(delay_percentile=0.8),
            retry=RetryPolicy(timeout_ms=300.0),
            fault_plan_factory=lambda i: FaultPlan(straggler_rate=0.3, seed=i),
        )
        a = _run(tiny_workload, **kwargs)
        b = _run(tiny_workload, **kwargs)
        assert a.injected_work_ms == b.injected_work_ms
