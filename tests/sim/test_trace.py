"""Tests for the tracing wrapper."""

from __future__ import annotations

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.speedup import TabulatedSpeedup
from repro.core.table import IntervalTable
from repro.schedulers import FMScheduler, SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate
from repro.sim.trace import TraceEventKind, TraceRecorder

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _spec(t: float, seq: float) -> ArrivalSpec:
    return ArrivalSpec(t, seq, _CURVE)


def _fm_table() -> IntervalTable:
    return IntervalTable(
        [
            Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 2), ScheduleStep(100.0, 4)]),
            Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 2), ScheduleStep(100.0, 4)]),
            Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True),
        ]
    )


class TestTraceRecorder:
    def test_transparent_results(self):
        """Tracing must not change the simulation outcome."""
        specs = [_spec(0.0, 100.0), _spec(10.0, 300.0)]
        plain = simulate(specs, SequentialScheduler(), cores=4)
        traced = simulate(specs, TraceRecorder(SequentialScheduler()), cores=4)
        assert [r.finish_ms for r in plain.records] == [
            r.finish_ms for r in traced.records
        ]

    def test_records_admissions_and_exits(self):
        recorder = TraceRecorder(SequentialScheduler())
        simulate([_spec(0.0, 50.0), _spec(5.0, 50.0)], recorder, cores=4)
        counts = recorder.counts()
        assert counts[TraceEventKind.ADMIT] == 2
        assert counts[TraceEventKind.EXIT] == 2

    def test_records_degree_climbs_and_boosts(self):
        recorder = TraceRecorder(FMScheduler(_fm_table()))
        simulate([_spec(0.0, 400.0)], recorder, cores=8, quantum_ms=5.0)
        counts = recorder.counts()
        assert counts.get(TraceEventKind.DEGREE_UP, 0) >= 2  # d1->d2->d4
        timeline = recorder.timeline(0)
        kinds = [e.kind for e in timeline]
        assert kinds[0] is TraceEventKind.ADMIT
        assert kinds[-1] is TraceEventKind.EXIT

    def test_records_queueing(self):
        recorder = TraceRecorder(FMScheduler(_fm_table()))
        simulate([_spec(0.0, 100.0)] * 3, recorder, cores=8, quantum_ms=5.0)
        assert recorder.counts().get(TraceEventKind.QUEUE, 0) >= 1

    def test_render_and_limit(self):
        recorder = TraceRecorder(SequentialScheduler())
        simulate([_spec(0.0, 50.0)] * 4, recorder, cores=8)
        text = recorder.render(limit=2)
        assert "more events" in text
        assert len(recorder.render().splitlines()) == len(recorder.events)

    def test_reset_clears_events(self):
        recorder = TraceRecorder(SequentialScheduler())
        simulate([_spec(0.0, 50.0)], recorder, cores=4)
        assert recorder.events
        recorder.reset()
        assert recorder.events == []

    def test_name_and_quantum_passthrough(self):
        recorder = TraceRecorder(SequentialScheduler())
        assert recorder.uses_quantum is False
        assert "SEQ" in recorder.name
