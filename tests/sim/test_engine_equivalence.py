"""The hot-path overhaul's correctness bar: the optimized engine must
produce **bit-for-bit identical** results to the frozen reference
implementation (:mod:`repro.sim._baseline`) on fixed seeds — across
schedulers, boosting, load shedding, fault injection, and saturation —
plus regression tests for the latent bugs fixed alongside it (O(n^2)
backlog drains, per-wake delayed-set sorts, silent engine reuse)."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.schedulers import (
    AdaptiveScheduler,
    FixedScheduler,
    FMScheduler,
    SequentialScheduler,
)
from repro.sim import ArrivalSpec, Engine, simulate
from repro.sim._baseline import simulate_baseline
from repro.sim.api import Admission, Scheduler
from repro.sim.request import RequestState
from tests.sim.test_engine import _CURVE, _arrivals  # shared fixtures


def _sweep_arrivals(rps: float, n: int, seed: int) -> list[ArrivalSpec]:
    """A reproducible Poisson trace with lognormal demand."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1000.0 / rps, size=n))
    demands = np.maximum(rng.lognormal(3.0, 0.8, size=n), 1.0)
    return [ArrivalSpec(float(t), float(s), _CURVE) for t, s in zip(times, demands)]


def _record_key(record):
    return (
        record.rid,
        record.arrival_ms,
        record.start_ms,
        record.finish_ms,
        record.seq_ms,
        record.final_degree,
        record.average_parallelism,
        record.thread_time_ms,
        record.core_time_ms,
        record.boosted,
        record.service_ms,
        record.contention_ms,
        record.boost_wait_ms,
        record.stall_ms,
    )


def _assert_identical(result, reference):
    """Every observable metric must match with ``==`` on raw floats —
    no tolerances: the optimizations claim bit-identity, not closeness."""
    assert len(result.records) == len(reference.records)
    for ours, theirs in zip(result.records, reference.records):
        assert _record_key(ours) == _record_key(theirs)
    assert [(s.rid, s.arrival_ms, s.shed_ms) for s in result.shed_records] == [
        (s.rid, s.arrival_ms, s.shed_ms) for s in reference.shed_records
    ]
    if result.records:
        assert result.tail_latency_ms(0.99) == reference.tail_latency_ms(0.99)
        assert result.mean_latency_ms() == reference.mean_latency_ms()
    assert result.cpu_utilization() == reference.cpu_utilization()
    assert result.fault_stats.as_dict() == reference.fault_stats.as_dict()


def _interval_table():
    from repro.core.schedule import Schedule, ScheduleStep
    from repro.core.table import IntervalTable

    # A hand-built FM table exercising immediate starts, admission
    # delays (v0 > 0), e1 queueing, and incremental degree raises,
    # without the profiling machinery.  Row i is the schedule at load
    # i + 1; loads past the end clamp to the e1 row.
    step = ScheduleStep
    return IntervalTable(
        [
            Schedule([step(0.0, 4)]),
            Schedule([step(0.0, 2), step(30.0, 4)]),
            Schedule([step(0.0, 2), step(30.0, 4)]),
            Schedule([step(0.0, 1), step(20.0, 2), step(60.0, 4)]),
            Schedule([step(0.0, 1), step(20.0, 2), step(60.0, 4)]),
            Schedule([step(10.0, 1), step(40.0, 2)]),
            Schedule([step(10.0, 1), step(40.0, 2)]),
            Schedule([step(0.0, 1)], wait_for_exit=True),
        ]
    )


_SCHEDULER_FACTORIES = {
    "seq": lambda: SequentialScheduler(),
    "fix4": lambda: FixedScheduler(4),
    "fix4-protected": lambda: FixedScheduler(4, load_protection=8, boost_after_ms=30.0),
    "adaptive": lambda: AdaptiveScheduler(max_degree=4, target_parallelism=6.0),
    "fm": lambda: FMScheduler(_interval_table()),
    "fm-noboost": lambda: FMScheduler(_interval_table(), boosting=False),
}


class TestBitIdentityWithBaseline:
    @pytest.mark.parametrize("policy", sorted(_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("load", ["light", "saturated"])
    def test_matches_reference_engine(self, policy, load):
        rps, n = (15.0, 300) if load == "light" else (70.0, 600)
        arrivals = _sweep_arrivals(
            rps, n, seed=zlib.crc32(f"{policy}/{load}".encode())
        )
        factory = _SCHEDULER_FACTORIES[policy]
        result = simulate(arrivals, factory(), cores=6)
        reference = simulate_baseline(arrivals, factory(), cores=6)
        _assert_identical(result, reference)

    @pytest.mark.parametrize("policy", ["fm", "fix4-protected"])
    def test_matches_reference_engine_under_faults(self, policy):
        arrivals = _sweep_arrivals(40.0, 400, seed=99)
        plan = FaultPlan.generate(
            seed=5,
            horizon_ms=arrivals[-1].time_ms + 5_000,
            core_fault_rate_hz=0.5,
            stall_rate_hz=1.0,
            straggler_rate=0.1,
            straggler_mu=0.7,
        )
        factory = _SCHEDULER_FACTORIES[policy]
        result = simulate(arrivals, factory(), cores=6, fault_plan=plan)
        reference = simulate_baseline(arrivals, factory(), cores=6, fault_plan=plan)
        _assert_identical(result, reference)

    def test_matches_reference_without_attribution(self):
        arrivals = _sweep_arrivals(50.0, 300, seed=3)
        result = simulate(
            arrivals, FMScheduler(_interval_table()), cores=6, attribution=False
        )
        reference = simulate_baseline(
            arrivals, FMScheduler(_interval_table()), cores=6, attribution=False
        )
        _assert_identical(result, reference)


class TestEngineReentrancy:
    def test_second_run_raises(self):
        engine = Engine(cores=2, scheduler=SequentialScheduler())
        engine.run(_arrivals([(0.0, 10.0)]))
        with pytest.raises(SimulationError, match="already ran"):
            engine.run(_arrivals([(0.0, 10.0)]))

    def test_failed_run_still_consumes_the_engine(self):
        engine = Engine(cores=2, scheduler=SequentialScheduler())
        with pytest.raises(SimulationError):
            engine.run([])  # no arrivals
        with pytest.raises(SimulationError, match="already ran"):
            engine.run(_arrivals([(0.0, 10.0)]))

    def test_simulate_builds_a_fresh_engine_per_call(self):
        arrivals = _arrivals([(0.0, 10.0), (1.0, 20.0)])
        first = simulate(arrivals, SequentialScheduler(), cores=2)
        second = simulate(arrivals, SequentialScheduler(), cores=2)
        assert [r.finish_ms for r in first.records] == [
            r.finish_ms for r in second.records
        ]


class _PureE1Scheduler(Scheduler):
    """Admission control only: every request waits for an exit."""

    name = "e1-probe"
    uses_quantum = False

    def on_arrival(self, ctx, request):
        return Admission.wait_for_exit()

    def on_wait_check(self, ctx, request):
        return Admission.wait_for_exit()


class TestDeepBacklogDrain:
    """The e1 backlog was a ``list`` drained with ``pop(0)`` — O(n^2)
    once overload queued thousands.  Now a deque: verify the drain stays
    FIFO and completes promptly at a backlog depth that made the
    quadratic path crawl."""

    def test_burst_backlog_drains_fifo(self):
        # Everyone arrives at once and queues behind the e1 marker; each
        # exit forces exactly one admission, so start order must be
        # strict arrival (rid) order all the way down the backlog.
        n = 3_000
        arrivals = [ArrivalSpec(0.0, 5.0, _CURVE) for _ in range(n)]
        result = simulate(arrivals, _PureE1Scheduler(), cores=2)
        assert len(result.records) == n
        starts = sorted(result.records, key=lambda r: (r.start_ms, r.rid))
        assert [r.rid for r in starts] == sorted(r.rid for r in result.records)

    def test_deep_backlog_matches_reference(self):
        arrivals = [ArrivalSpec(float(i % 3), 4.0, _CURVE) for i in range(800)]
        result = simulate(arrivals, FMScheduler(_interval_table()), cores=2)
        reference = simulate_baseline(
            arrivals, FMScheduler(_interval_table()), cores=2
        )
        _assert_identical(result, reference)


class _DelayingScheduler(Scheduler):
    """Delays every arrival, then admits on wake; records wake order."""

    name = "delay-probe"
    uses_quantum = False

    def __init__(self, delay_ms: float = 200.0) -> None:
        self.delay_ms = delay_ms
        self.wake_order: list[int] = []

    def on_arrival(self, ctx, request):
        return Admission.delay(self.delay_ms)

    def on_wait_check(self, ctx, request):
        if request.state is RequestState.DELAYED:
            self.wake_order.append(request.rid)
        return Admission.start(1)

    def reset(self) -> None:
        self.wake_order.clear()


class TestDelayedWakeOrder:
    """The delayed set was rescanned with ``sorted(set)`` on every wake;
    it is now a sorted list.  Wake order must remain arrival order."""

    def test_wakes_scan_in_arrival_order(self):
        # Interleave arrivals so insertion order into the delayed set
        # differs from a naive "latest first" ordering, then let exits
        # wake them: the scan must visit rids ascending (= arrival
        # order, since rids are assigned by sorted arrival time).
        scheduler = _DelayingScheduler(delay_ms=500.0)
        specs = [(0.0, 30.0)] + [(1.0 + 0.01 * i, 10.0) for i in range(20)]
        simulate(_arrivals(specs), scheduler, cores=2)
        waves: list[int] = scheduler.wake_order
        assert waves, "delayed requests never woke"
        # Within any single wake sweep rids must be non-decreasing
        # relative to the previous entry unless a new sweep started
        # (which restarts from the lowest still-delayed rid).
        sweeps: list[list[int]] = [[waves[0]]]
        for rid in waves[1:]:
            if rid > sweeps[-1][-1]:
                sweeps[-1].append(rid)
            else:
                sweeps.append([rid])
        for sweep in sweeps:
            assert sweep == sorted(sweep)

    def test_delay_heavy_run_matches_reference(self):
        scheduler_new = _DelayingScheduler(delay_ms=50.0)
        scheduler_old = _DelayingScheduler(delay_ms=50.0)
        specs = [(float(i % 7) * 3.0, 8.0 + i % 5) for i in range(200)]
        result = simulate(_arrivals(specs), scheduler_new, cores=2)
        reference = simulate_baseline(_arrivals(specs), scheduler_old, cores=2)
        _assert_identical(result, reference)


class TestEventsProcessedCounter:
    def test_counts_all_drained_events(self):
        engine = Engine(cores=4, scheduler=FixedScheduler(2))
        engine.run(_arrivals([(0.0, 50.0), (5.0, 50.0), (10.0, 50.0)]))
        # At minimum: one arrival per request, one completion event per
        # rate generation that fired, plus quantum ticks.
        assert engine.events_processed >= 6
