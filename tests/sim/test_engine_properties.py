"""Property-based engine invariants over random workloads and policies.

These are the simulator's contract: whatever the trace and policy,
physics holds — no request finishes faster than its best-case parallel
time or slower than implied by capacity, core usage balances, and
metrics stay in range.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.speedup import TabulatedSpeedup
from repro.schedulers import (
    AdaptiveScheduler,
    FixedScheduler,
    SequentialScheduler,
    SimpleIntervalScheduler,
)
from repro.sim.engine import ArrivalSpec, simulate

_CURVE = TabulatedSpeedup([1.0, 1.6, 2.1, 2.5])
_MAX_SPEEDUP = 2.5

_policies = st.sampled_from(
    [
        SequentialScheduler(),
        FixedScheduler(2),
        FixedScheduler(4),
        FixedScheduler(3, load_protection=4),
        AdaptiveScheduler(4, 8.0),
        SimpleIntervalScheduler(30.0, 4),
    ]
)

_traces = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # arrival
        st.floats(min_value=1.0, max_value=400.0),  # demand
    ),
    min_size=1,
    max_size=25,
)


@given(trace=_traces, policy=_policies, cores=st.integers(min_value=1, max_value=8),
       spin=st.sampled_from([0.0, 0.25, 1.0]))
@settings(max_examples=80, deadline=None)
def test_engine_physics(trace, policy, cores, spin):
    specs = [ArrivalSpec(t, s, _CURVE) for t, s in trace]
    result = simulate(specs, policy, cores=cores, quantum_ms=5.0, spin_fraction=spin)

    assert len(result) == len(specs)
    total_work = sum(s.seq_ms for s in specs)
    total_core_time = 0.0
    for record in result.records:
        # Lower bound: perfect parallel speedup, no contention or wait.
        assert record.execution_ms >= record.seq_ms / _MAX_SPEEDUP - 1e-6
        # Latency includes any admission wait.
        assert record.latency_ms >= record.execution_ms - 1e-9
        # Thread-time at least the wall time (degree >= 1 throughout).
        assert record.thread_time_ms >= record.execution_ms - 1e-6
        # A request's core usage is at least its useful work:
        # occupancy o(d) >= s(d), so core-time >= work retired.
        assert record.core_time_ms >= record.seq_ms - 1e-6
        total_core_time += record.core_time_ms

    # System-level accounting balances per-request accounting.
    system_busy = result.cpu_utilization() * result.cores * result.duration_ms
    assert system_busy == pytest.approx(total_core_time, rel=1e-6)
    # Cores were never over-allocated.
    assert result.cpu_utilization() <= 1.0 + 1e-9
    # All work retired: every record exists and utilization implies at
    # least the total useful work passed through the cores.
    assert system_busy >= total_work - 1e-3


@given(trace=_traces, cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_sequential_conservation_exact(trace, cores):
    """Under SEQ with full spin, core-time equals sequential work
    exactly: one thread, occupancy 1, no waste."""
    specs = [ArrivalSpec(t, s, _CURVE) for t, s in trace]
    result = simulate(specs, SequentialScheduler(), cores=cores, spin_fraction=1.0)
    for record in result.records:
        assert record.core_time_ms == pytest.approx(record.seq_ms, rel=1e-9)


@given(trace=_traces)
@settings(max_examples=30, deadline=None)
def test_more_cores_never_hurt(trace):
    """Tail latency is monotone non-increasing in core count for a
    work-conserving policy (same trace, same degrees)."""
    specs = [ArrivalSpec(t, s, _CURVE) for t, s in trace]
    tails = []
    for cores in (1, 2, 8):
        result = simulate(specs, FixedScheduler(2), cores=cores, spin_fraction=1.0)
        tails.append(result.tail_latency_ms(1.0))
    assert tails[0] >= tails[1] - 1e-6
    assert tails[1] >= tails[2] - 1e-6


@given(
    trace=_traces,
    degree_low=st.integers(min_value=1, max_value=2),
    degree_high=st.integers(min_value=3, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_uncontended_parallelism_helps(trace, degree_low, degree_high):
    """With abundant cores, higher fixed degrees never worsen any
    individual completion (speedups are non-decreasing)."""
    specs = [ArrivalSpec(t, s, _CURVE) for t, s in trace]
    low = simulate(specs, FixedScheduler(degree_low), cores=256, spin_fraction=0.0)
    high = simulate(specs, FixedScheduler(degree_high), cores=256, spin_fraction=0.0)
    for a, b in zip(low.records, high.records):
        assert b.latency_ms <= a.latency_ms + 1e-6
