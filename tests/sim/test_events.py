"""Tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.events import Event, EventKind, EventQueue


def _event(rid: int = 0) -> Event:
    return Event(EventKind.ARRIVAL, request_id=rid)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, _event(1))
        q.push(1.0, _event(2))
        q.push(3.0, _event(3))
        order = [q.pop()[1].request_id for _ in range(3)]
        assert order == [2, 3, 1]

    def test_ties_break_fifo(self):
        q = EventQueue()
        for rid in range(5):
            q.push(7.0, _event(rid))
        order = [q.pop()[1].request_id for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, _event())

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(2.0, _event())
        assert q.peek_time() == 2.0
        assert len(q) == 1
        assert q

    @given(times=st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    @settings(max_examples=60)
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(t, _event(i))
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(popped)
