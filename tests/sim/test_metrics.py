"""Tests for metrics collection and result views."""

from __future__ import annotations

import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector, RequestRecord, SimulationResult
from repro.sim.request import SimRequest

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0])


def _record(rid: int, arrival: float, latency: float, seq: float,
            degree: int = 1, avg_par: float = 1.0) -> RequestRecord:
    return RequestRecord(
        rid=rid,
        arrival_ms=arrival,
        start_ms=arrival,
        finish_ms=arrival + latency,
        seq_ms=seq,
        final_degree=degree,
        average_parallelism=avg_par,
        thread_time_ms=latency * avg_par,
        core_time_ms=latency,
        boosted=False,
    )


def _result(records, cores=4, duration=1000.0) -> SimulationResult:
    return SimulationResult(
        records=records,
        cores=cores,
        duration_ms=duration,
        thread_integral=2000.0,
        core_busy_integral=1600.0,
        system_count_integral=3000.0,
        thread_residency={2: 600.0, 8: 400.0},
    )


class TestCollector:
    def test_collects_and_finalizes(self):
        collector = MetricsCollector(cores=4)
        req = SimRequest(0, 0.0, 50.0, _CURVE)
        req.start(10.0, 1)
        req.rate = 1.0
        req.advance(50.0, 1.0)
        req.finish(60.0)
        collector.record(req)
        collector.observe_interval(60.0, 1, 1.0, 1)
        result = collector.finalize()
        assert len(result) == 1
        assert result.records[0].latency_ms == pytest.approx(60.0)

    def test_rejects_unfinished(self):
        collector = MetricsCollector(cores=4)
        with pytest.raises(SimulationError):
            collector.record(SimRequest(0, 0.0, 50.0, _CURVE))

    def test_rejects_negative_interval(self):
        with pytest.raises(SimulationError):
            MetricsCollector(cores=4).observe_interval(-1.0, 0, 0.0, 0)

    def test_empty_result_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector(cores=4).finalize()


class TestResultViews:
    def test_latency_stats(self):
        records = [_record(i, float(i), 10.0 + i, seq=10.0) for i in range(100)]
        result = _result(records)
        assert result.mean_latency_ms() == pytest.approx(10.0 + 49.5)
        assert result.tail_latency_ms(0.99) == pytest.approx(10.0 + 98.0)
        assert result.tail_latency_ms(1.0) == pytest.approx(10.0 + 99.0)

    def test_system_gauges(self):
        result = _result([_record(0, 0.0, 10.0, 10.0)])
        assert result.average_threads() == pytest.approx(2.0)
        assert result.cpu_utilization() == pytest.approx(1600.0 / 4000.0)
        assert result.average_system_count() == pytest.approx(3.0)

    def test_thread_count_distribution(self):
        result = _result([_record(0, 0.0, 10.0, 10.0)])
        dist = result.thread_count_distribution([(0, 5), (6, 10)])
        assert dist["0-5"] == pytest.approx(0.6)
        assert dist["6-10"] == pytest.approx(0.4)

    def test_demand_band_parallelism(self):
        records = [
            _record(0, 0.0, 5.0, seq=10.0, avg_par=1.0),
            _record(1, 1.0, 5.0, seq=20.0, avg_par=2.0),
            _record(2, 2.0, 5.0, seq=900.0, avg_par=4.0),
        ]
        result = _result(records)
        assert result.average_parallelism(0.67, 1.0) == pytest.approx(4.0)
        assert result.average_parallelism(0.0, 0.33) == pytest.approx(1.0)
        assert result.average_parallelism() == pytest.approx(7.0 / 3.0)

    def test_final_degree_histogram(self):
        records = [
            _record(0, 0.0, 5.0, 10.0, degree=1),
            _record(1, 1.0, 5.0, 10.0, degree=1),
            _record(2, 2.0, 5.0, 10.0, degree=4),
            _record(3, 3.0, 5.0, 10.0, degree=4),
        ]
        hist = _result(records).final_degree_histogram()
        assert hist == {1: 0.5, 4: 0.5}

    def test_band_validation(self):
        result = _result([_record(0, 0.0, 5.0, 10.0)])
        with pytest.raises(ValueError):
            result.average_parallelism(0.5, 0.5)


class TestSlicing:
    def test_slice_by_arrival(self):
        records = [_record(i, float(i), 10.0, 10.0) for i in range(10)]
        result = _result(records)
        tail_slice = result.slice_by_arrival(8, 10)
        assert len(tail_slice) == 2
        assert tail_slice.records[0].rid == 8
        # integrals scale with the retained fraction
        assert tail_slice.duration_ms == pytest.approx(200.0)
        assert tail_slice.average_threads() == pytest.approx(result.average_threads())

    def test_empty_slice_rejected(self):
        result = _result([_record(0, 0.0, 5.0, 10.0)])
        with pytest.raises(ValueError):
            result.slice_by_arrival(5, 6)

    def test_records_sorted_by_arrival(self):
        collector = MetricsCollector(cores=2)
        for rid, arrival in [(0, 50.0), (1, 10.0)]:
            req = SimRequest(rid, arrival, 5.0, _CURVE)
            req.start(arrival, 1)
            req.rate = 1.0
            req.advance(5.0, 1.0)
            req.finish(arrival + 5.0)
            collector.record(req)
        collector.observe_interval(10.0, 1, 1.0, 1)
        result = collector.finalize()
        assert [r.rid for r in result.records] == [1, 0]
