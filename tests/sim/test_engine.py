"""Engine fidelity tests: single-request analytics, conservation,
determinism, admission control, and contention behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import RequestProfile
from repro.core.formulas import completion_time
from repro.core.schedule import IntervalSchedule
from repro.core.speedup import TabulatedSpeedup
from repro.core.table import IntervalTable
from repro.errors import SimulationError
from repro.schedulers import (
    FixedScheduler,
    FMScheduler,
    SequentialScheduler,
    SimpleIntervalScheduler,
)
from repro.sim.engine import ArrivalSpec, Engine, simulate

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _arrivals(specs) -> list[ArrivalSpec]:
    return [ArrivalSpec(t, s, _CURVE) for t, s in specs]


class TestSingleRequestFidelity:
    """An isolated request must match the Figure 6 analytics exactly."""

    def test_sequential_request(self):
        result = simulate(_arrivals([(0.0, 100.0)]), SequentialScheduler(), cores=4)
        record = result.records[0]
        assert record.latency_ms == pytest.approx(100.0)
        assert record.final_degree == 1
        assert record.average_parallelism == pytest.approx(1.0)

    def test_fixed_degree_request(self):
        result = simulate(_arrivals([(0.0, 100.0)]), FixedScheduler(3), cores=4)
        assert result.records[0].latency_ms == pytest.approx(100.0 / 2.0)

    @given(
        seq=st.floats(min_value=5.0, max_value=800.0),
        interval=st.sampled_from([10.0, 40.0, 160.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_simple_interval_matches_equation_one(self, seq, interval):
        """Uncontended, a request under the +1-thread-per-interval policy
        completes exactly as Eq. (1) predicts for the equivalent
        S-schedule — up to one scheduling quantum per degree step."""
        quantum = 1.0
        result = simulate(
            _arrivals([(0.0, seq)]),
            SimpleIntervalScheduler(interval, max_degree=4),
            cores=8,
            quantum_ms=quantum,
        )
        request = RequestProfile(seq, _CURVE)
        predicted = completion_time(
            request, IntervalSchedule([0.0, interval, interval, interval])
        )
        # Each of the up to 3 degree steps may be observed up to one
        # quantum late.
        got = result.records[0].latency_ms
        assert predicted - 1e-6 <= got <= predicted + 3 * quantum + 1e-6

    def test_latency_includes_queueing(self):
        table = IntervalTable.from_dict(
            {
                "metadata": None,
                "schedules": [
                    {"wait_for_exit": False, "steps": [[25.0, 1]]},
                ],
            }
        )
        result = simulate(
            _arrivals([(0.0, 50.0)]), FMScheduler(table), cores=4
        )
        assert result.records[0].latency_ms == pytest.approx(75.0)
        assert result.records[0].queueing_ms == pytest.approx(25.0)


class TestConservation:
    def test_all_work_is_retired(self, tiny_workload):
        rng = np.random.default_rng(0)
        from repro.workloads.arrivals import PoissonProcess

        arrivals = tiny_workload.arrivals(100, PoissonProcess(50.0), rng)
        result = simulate(arrivals, FixedScheduler(2), cores=4, spin_fraction=0.5)
        assert len(result) == 100

    def test_core_time_equals_busy_integral(self):
        specs = _arrivals([(0.0, 100.0), (5.0, 60.0), (11.0, 200.0)])
        result = simulate(specs, FixedScheduler(2), cores=3, spin_fraction=0.25)
        per_request = sum(r.core_time_ms for r in result.records)
        system = result.cpu_utilization() * result.cores * result.duration_ms
        assert per_request == pytest.approx(system, rel=1e-6)

    def test_utilization_bounded(self):
        specs = _arrivals([(i * 2.0, 80.0) for i in range(50)])
        result = simulate(specs, FixedScheduler(4), cores=4, spin_fraction=1.0)
        assert 0.0 < result.cpu_utilization() <= 1.0 + 1e-9

    def test_sequential_uncontended_core_time_equals_work(self):
        specs = _arrivals([(0.0, 100.0)])
        result = simulate(specs, SequentialScheduler(), cores=4)
        assert result.records[0].core_time_ms == pytest.approx(100.0)


class TestContention:
    def test_oversubscription_slows_everyone(self):
        # 4 sequential requests on 2 cores: each occupies 1 core, so
        # they run at factor 1/2 and finish together at 200 ms.
        specs = _arrivals([(0.0, 100.0)] * 4)
        result = simulate(specs, SequentialScheduler(), cores=2, spin_fraction=1.0)
        for record in result.records:
            assert record.latency_ms == pytest.approx(200.0)

    def test_spin_zero_harvests_idle_threads(self):
        # Degree-4 requests with s(4) = 2.4 occupy only 2.4 cores at
        # spin 0: two of them fit on 5 cores without slowdown.
        specs = _arrivals([(0.0, 100.0), (0.0, 100.0)])
        result = simulate(specs, FixedScheduler(4), cores=5, spin_fraction=0.0)
        for record in result.records:
            assert record.latency_ms == pytest.approx(100.0 / 2.4)

    def test_spin_one_contends_fully(self):
        specs = _arrivals([(0.0, 100.0), (0.0, 100.0)])
        result = simulate(specs, FixedScheduler(4), cores=5, spin_fraction=1.0)
        # 8 threads on 5 cores: factor 5/8.
        expected = (100.0 / 2.4) / (5.0 / 8.0)
        for record in result.records:
            assert record.latency_ms == pytest.approx(expected)

    def test_completion_order_respects_rates(self):
        specs = _arrivals([(0.0, 100.0), (0.0, 30.0)])
        result = simulate(specs, SequentialScheduler(), cores=1, spin_fraction=1.0)
        by_rid = sorted(result.records, key=lambda r: r.rid)
        # Processor sharing: short (30) finishes at 60, long at 130.
        assert by_rid[1].latency_ms == pytest.approx(60.0)
        assert by_rid[0].latency_ms == pytest.approx(130.0)


class TestDeterminism:
    def test_identical_runs_are_bitwise_equal(self, tiny_workload):
        from repro.workloads.arrivals import PoissonProcess

        def run():
            rng = np.random.default_rng(42)
            arrivals = tiny_workload.arrivals(80, PoissonProcess(60.0), rng)
            return simulate(arrivals, FixedScheduler(2), cores=4)

        a, b = run(), run()
        assert [r.finish_ms for r in a.records] == [r.finish_ms for r in b.records]
        assert a.tail_latency_ms() == b.tail_latency_ms()


class TestAdmissionControl:
    def _table_with_e1(self) -> IntervalTable:
        return IntervalTable.from_dict(
            {
                "metadata": None,
                "schedules": [
                    {"wait_for_exit": False, "steps": [[0.0, 1]]},
                    {"wait_for_exit": False, "steps": [[0.0, 1]]},
                    {"wait_for_exit": True, "steps": [[0.0, 1]]},
                ],
            }
        )

    def test_e1_row_bounds_concurrency(self):
        # 5 simultaneous requests, capacity 3 (rows 1, 2 then e1):
        # at most 2 admitted immediately + forced admissions per exit.
        specs = _arrivals([(0.0, 100.0)] * 5)
        result = simulate(specs, FMScheduler(self._table_with_e1()), cores=8)
        starts = sorted(r.start_ms for r in result.records)
        # first two start immediately; the rest serialize behind exits
        assert starts[0] == 0.0
        assert starts[1] == 0.0
        assert starts[2] > 0.0
        assert len(result) == 5

    def test_empty_system_never_deadlocks_on_e1(self):
        table = IntervalTable.from_dict(
            {
                "metadata": None,
                "schedules": [{"wait_for_exit": True, "steps": [[0.0, 1]]}],
            }
        )
        result = simulate(_arrivals([(0.0, 50.0)]), FMScheduler(table), cores=2)
        assert result.records[0].latency_ms == pytest.approx(50.0)

    def test_delay_admission(self):
        table = IntervalTable.from_dict(
            {
                "metadata": None,
                "schedules": [{"wait_for_exit": False, "steps": [[40.0, 2]]}],
            }
        )
        result = simulate(_arrivals([(0.0, 60.0)]), FMScheduler(table), cores=4)
        record = result.records[0]
        assert record.queueing_ms == pytest.approx(40.0)
        assert record.latency_ms == pytest.approx(40.0 + 60.0 / 1.5)

    def test_delayed_request_starts_early_when_load_drops(self):
        """Self-correction (Section 4.2): an exit re-evaluates waiters."""
        table = IntervalTable.from_dict(
            {
                "metadata": None,
                "schedules": [
                    {"wait_for_exit": False, "steps": [[0.0, 1]]},
                    {"wait_for_exit": False, "steps": [[500.0, 1]]},
                ],
            }
        )
        # Request A (20 ms) occupies the system; B arrives at load 2 and
        # is told to wait 500 ms — but A exits at 20 ms, and the row for
        # load 1 admits B immediately.
        specs = _arrivals([(0.0, 20.0), (1.0, 30.0)])
        result = simulate(specs, FMScheduler(table), cores=4)
        b = [r for r in result.records if r.rid == 1][0]
        assert b.start_ms == pytest.approx(20.0)


class TestEngineValidation:
    def test_rejects_empty_arrivals(self):
        with pytest.raises(SimulationError):
            simulate([], SequentialScheduler(), cores=2)

    def test_rejects_bad_cores(self):
        with pytest.raises(SimulationError):
            Engine(cores=0, scheduler=SequentialScheduler())

    def test_rejects_bad_quantum(self):
        with pytest.raises(SimulationError):
            Engine(cores=2, scheduler=SequentialScheduler(), quantum_ms=0.0)

    def test_unsorted_arrivals_accepted(self):
        specs = _arrivals([(50.0, 10.0), (0.0, 10.0)])
        result = simulate(specs, SequentialScheduler(), cores=2)
        assert len(result) == 2
        assert result.records[0].arrival_ms == 0.0
