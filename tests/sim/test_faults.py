"""Fault injection: determinism, core loss, stalls, stragglers, shedding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.speedup import TabulatedSpeedup
from repro.core.table import IntervalTable
from repro.errors import FaultInjectionError
from repro.faults import CoreFault, FaultPlan, StallFault
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate
from repro.workloads.arrivals import PoissonProcess

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _arrivals(specs) -> list[ArrivalSpec]:
    return [ArrivalSpec(t, s, _CURVE) for t, s in specs]


def _e1_table(capacity: int) -> IntervalTable:
    """Sequential rows up to ``capacity``, then a wait-for-exit row."""
    rows = [Schedule([ScheduleStep(0.0, 1)])] * capacity
    rows.append(Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True))
    return IntervalTable(rows)


class TestPlanValidation:
    def test_bad_straggler_rate(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(straggler_rate=1.5)

    def test_bad_core_fault(self):
        with pytest.raises(FaultInjectionError):
            CoreFault(time_ms=-1.0, duration_ms=10.0)
        with pytest.raises(FaultInjectionError):
            CoreFault(time_ms=0.0, duration_ms=0.0)
        with pytest.raises(FaultInjectionError):
            CoreFault(time_ms=0.0, duration_ms=10.0, cores=0)

    def test_bad_stall(self):
        with pytest.raises(FaultInjectionError):
            StallFault(time_ms=0.0, duration_ms=-5.0)

    def test_bad_generate(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(seed=0, horizon_ms=0.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(seed=0, horizon_ms=100.0, stall_rate_hz=-1.0)


class TestStragglerDraws:
    def test_zero_rate_never_inflates(self):
        plan = FaultPlan(straggler_rate=0.0)
        assert plan.straggler_inflation(7) == 1.0
        assert plan.is_empty

    def test_unit_rate_always_inflates(self):
        plan = FaultPlan(straggler_rate=1.0, seed=3)
        assert all(plan.straggler_inflation(rid) > 1.0 for rid in range(20))

    def test_draw_depends_only_on_seed_and_rid(self):
        a = FaultPlan(straggler_rate=0.5, seed=3)
        b = FaultPlan(straggler_rate=0.5, seed=3)
        assert [a.straggler_inflation(r) for r in range(50)] == [
            b.straggler_inflation(r) for r in range(50)
        ]

    def test_different_seeds_differ(self):
        a = [FaultPlan(straggler_rate=0.5, seed=1).straggler_inflation(r) for r in range(50)]
        b = [FaultPlan(straggler_rate=0.5, seed=2).straggler_inflation(r) for r in range(50)]
        assert a != b


class TestGenerate:
    def test_deterministic(self):
        kwargs = dict(
            horizon_ms=5000.0, core_fault_rate_hz=2.0, stall_rate_hz=5.0
        )
        assert FaultPlan.generate(9, **kwargs) == FaultPlan.generate(9, **kwargs)

    def test_events_within_horizon(self):
        plan = FaultPlan.generate(
            4, horizon_ms=2000.0, core_fault_rate_hz=10.0, stall_rate_hz=10.0
        )
        assert plan.core_faults and plan.stalls
        assert all(0 <= f.time_ms < 2000.0 for f in plan.core_faults)
        assert all(0 <= s.time_ms < 2000.0 for s in plan.stalls)


class TestEngineFaults:
    def test_core_loss_slows_contended_requests(self):
        """Two degree-1 requests on 2 cores run at full speed; losing a
        core for the whole run halves the effective capacity."""
        specs = _arrivals([(0.0, 100.0), (0.0, 100.0)])
        clean = simulate(specs, FixedScheduler(1), cores=2, spin_fraction=0.0)
        faulty = simulate(
            specs,
            FixedScheduler(1),
            cores=2,
            spin_fraction=0.0,
            fault_plan=FaultPlan(core_faults=(CoreFault(0.0, 10_000.0),)),
        )
        assert max(r.latency_ms for r in clean.records) == pytest.approx(100.0)
        assert max(r.latency_ms for r in faulty.records) == pytest.approx(200.0)
        assert faulty.fault_stats.core_faults_applied == 1

    def test_core_restore_returns_capacity(self):
        """A core lost for 50 ms delays completion by exactly the
        capacity deficit, then full speed resumes."""
        specs = _arrivals([(0.0, 100.0), (0.0, 100.0)])
        result = simulate(
            specs,
            FixedScheduler(1),
            cores=2,
            spin_fraction=0.0,
            fault_plan=FaultPlan(core_faults=(CoreFault(0.0, 50.0),)),
        )
        # 50 ms at half capacity retires 50 ms of the 200 ms total; the
        # remaining 150 ms retires at 2 cores -> finish at 125 ms.
        assert max(r.latency_ms for r in result.records) == pytest.approx(125.0)

    def test_core_loss_clamps_at_one_core(self):
        specs = _arrivals([(0.0, 50.0)])
        result = simulate(
            specs,
            SequentialScheduler(),
            cores=2,
            spin_fraction=0.0,
            fault_plan=FaultPlan(core_faults=(CoreFault(0.0, 10_000.0, cores=99),)),
        )
        # One core always survives, so a lone request still finishes.
        assert result.records[0].latency_ms == pytest.approx(50.0)

    def test_stall_freezes_victim(self):
        result = simulate(
            _arrivals([(0.0, 100.0)]),
            SequentialScheduler(),
            cores=4,
            fault_plan=FaultPlan(stalls=(StallFault(10.0, 50.0),)),
        )
        record = result.records[0]
        assert record.latency_ms == pytest.approx(150.0)
        assert result.fault_stats.stalls_injected == 1
        assert result.fault_stats.degraded_completions == 1

    def test_stall_with_no_running_request_is_noop(self):
        result = simulate(
            _arrivals([(0.0, 100.0)]),
            SequentialScheduler(),
            cores=4,
            fault_plan=FaultPlan(stalls=(StallFault(500.0, 50.0),)),
        )
        assert result.records[0].latency_ms == pytest.approx(100.0)
        assert result.fault_stats.stalls_injected == 0

    def test_straggler_inflates_latency_not_nominal_demand(self):
        """sigma=0 makes the inflation factor exactly 2; the record's
        seq_ms stays the nominal demand (the scheduler plans against
        the profile, not the fault)."""
        plan = FaultPlan(straggler_rate=1.0, straggler_mu=0.0, straggler_sigma=0.0)
        result = simulate(
            _arrivals([(0.0, 100.0)]),
            SequentialScheduler(),
            cores=4,
            fault_plan=plan,
        )
        record = result.records[0]
        assert record.latency_ms == pytest.approx(200.0)
        assert record.seq_ms == pytest.approx(100.0)
        assert result.fault_stats.stragglers_injected == 1
        assert result.fault_stats.degraded_completions == 1

    def test_faulty_run_is_deterministic(self, tiny_workload):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        plan = FaultPlan.generate(
            5,
            horizon_ms=3000.0,
            core_fault_rate_hz=1.0,
            stall_rate_hz=2.0,
            straggler_rate=0.2,
        )
        a = simulate(
            tiny_workload.arrivals(80, PoissonProcess(40.0), rng_a),
            FixedScheduler(2),
            cores=4,
            fault_plan=plan,
        )
        b = simulate(
            tiny_workload.arrivals(80, PoissonProcess(40.0), rng_b),
            FixedScheduler(2),
            cores=4,
            fault_plan=plan,
        )
        assert [r.latency_ms for r in a.records] == [r.latency_ms for r in b.records]
        assert a.fault_stats.as_dict() == b.fault_stats.as_dict()

    def test_different_fault_seeds_change_the_run(self, tiny_workload):
        def run(seed):
            rng = np.random.default_rng(0)
            return simulate(
                tiny_workload.arrivals(80, PoissonProcess(40.0), rng),
                FixedScheduler(2),
                cores=4,
                fault_plan=FaultPlan(straggler_rate=0.3, seed=seed),
            )

        a, b = run(1), run(2)
        assert [r.latency_ms for r in a.records] != [r.latency_ms for r in b.records]


class TestShedding:
    def test_backlog_bound_sheds_excess_arrivals(self):
        table = _e1_table(capacity=1)
        specs = _arrivals([(0.0, 100.0), (1.0, 100.0), (2.0, 100.0)])
        result = simulate(
            specs, FMScheduler(table, max_backlog=1), cores=4
        )
        # One runs, one queues, the third finds the backlog full.
        assert len(result.records) == 2
        assert result.shed_count == 1
        assert result.admitted_fraction == pytest.approx(2.0 / 3.0)
        shed = result.shed_records[0]
        assert shed.rid == 2
        assert shed.shed_ms == pytest.approx(2.0)
        assert not shed.deadline
        assert result.fault_stats.shed_requests == 1
        assert result.fault_stats.deadline_sheds == 0

    def test_deadline_budget_sheds_stale_waiters(self):
        table = _e1_table(capacity=1)
        specs = _arrivals([(0.0, 100.0), (1.0, 50.0)])
        result = simulate(
            specs, FMScheduler(table, deadline_ms=20.0), cores=4
        )
        # The waiter is re-checked at the first exit (t=100), 99 ms
        # after arrival -- far past its 20 ms budget.
        assert len(result.records) == 1
        assert result.records[0].rid == 0
        shed = result.shed_records[0]
        assert shed.rid == 1
        assert shed.deadline
        assert shed.waited_ms == pytest.approx(99.0)
        assert result.fault_stats.deadline_sheds == 1

    def test_no_shedding_without_bounds(self):
        table = _e1_table(capacity=1)
        specs = _arrivals([(0.0, 100.0), (1.0, 100.0), (2.0, 100.0)])
        result = simulate(specs, FMScheduler(table), cores=4)
        assert len(result.records) == 3
        assert result.shed_count == 0
        assert result.admitted_fraction == 1.0

    def test_conservation_under_shedding(self, tiny_workload):
        rng = np.random.default_rng(1)
        table = _e1_table(capacity=2)
        arrivals = tiny_workload.arrivals(60, PoissonProcess(100.0), rng)
        result = simulate(
            arrivals,
            FMScheduler(table, max_backlog=2, deadline_ms=100.0),
            cores=4,
        )
        assert len(result.records) + result.shed_count == 60
        assert result.shed_count > 0


class TestOverloadFlipScenario:
    """The canned overload->underload flip (repro.faults.scenarios)."""

    def test_plans_are_placed_and_reproducible(self):
        from repro.faults.scenarios import overload_flip

        first = overload_flip(seed=7, horizon_ms=1000.0)
        second = overload_flip(seed=7, horizon_ms=1000.0)
        for server in range(3):
            assert first(server) == second(server)  # frozen dataclass equality
        # Different servers draw different straggler seeds but share the
        # same placed events.
        a, b = first(0), first(1)
        assert a.seed != b.seed
        assert a.core_faults == b.core_faults
        assert a.stalls == b.stalls

    def test_event_placement(self):
        from repro.faults.scenarios import overload_flip

        plan = overload_flip(
            seed=0, horizon_ms=1000.0, onset_fraction=0.3,
            duration_fraction=0.3, cores_lost=4, stall_ms=10.0,
        )(0)
        (core_fault,) = plan.core_faults
        assert core_fault.time_ms == pytest.approx(300.0)
        assert core_fault.duration_ms == pytest.approx(300.0)
        assert core_fault.cores == 4
        assert [s.time_ms for s in plan.stalls] == pytest.approx([400.0, 500.0])

    def test_no_stalls_when_disabled(self):
        from repro.faults.scenarios import overload_flip

        plan = overload_flip(seed=0, horizon_ms=1000.0, stall_ms=0.0)(0)
        assert plan.stalls == ()

    def test_validation(self):
        from repro.faults.scenarios import overload_flip

        with pytest.raises(FaultInjectionError):
            overload_flip(seed=0, horizon_ms=0.0)
        with pytest.raises(FaultInjectionError):
            overload_flip(seed=0, horizon_ms=100.0, onset_fraction=1.5)
        with pytest.raises(FaultInjectionError):
            overload_flip(
                seed=0, horizon_ms=100.0,
                onset_fraction=0.6, duration_fraction=0.5,
            )
        with pytest.raises(FaultInjectionError):
            overload_flip(seed=0, horizon_ms=100.0, cores_lost=0)
        with pytest.raises(FaultInjectionError):
            overload_flip(seed=0, horizon_ms=100.0, stall_ms=-1.0)
