"""Streamed simulation (DESIGN.md §14): a streamed run must measure the
exact same completions as the record-keeping batch run, its summaries
must merge exactly, and the engine must hold only the running set when
fed a generator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.experiments.runner import latency_histogram
from repro.faults.plan import FaultPlan
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.sim import simulate, simulate_stream
from repro.sim.stream import StreamingCollector, StreamSummary
from repro.workloads.arrivals import PoissonProcess
from tests.sim.test_engine_equivalence import _SCHEDULER_FACTORIES, _sweep_arrivals
from tests.workloads.test_streaming import _workload


class TestStreamEqualsBatch:
    @pytest.mark.parametrize("policy", ["seq", "fm", "fix4-protected"])
    def test_histogram_bit_identical_to_batch_records(self, policy):
        """Streaming changes where samples go, not what they are: the
        streamed histogram holds the batch run's exact latency multiset
        — every bucket count, min, and max bit-identical.  (Only the
        true-sum accumulator may differ in the last ulp: it adds in
        completion order, while batch records are re-sorted by arrival
        at finalize.)"""
        arrivals = _sweep_arrivals(50.0, 400, seed=21)
        factory = _SCHEDULER_FACTORIES[policy]
        batch = simulate(arrivals, factory(), cores=6)
        summary = simulate_stream(iter(arrivals), factory(), cores=6)
        got, want = summary.histogram.state(), latency_histogram(batch).state()
        assert got[:5] == want[:5]  # grid, buckets, zero_count, count
        assert got[6:] == want[6:]  # min, max
        assert got[5] == pytest.approx(want[5], rel=1e-12)  # sum, reassociated
        assert summary.count == len(batch.records)
        assert summary.shed_count == len(batch.shed_records)
        assert summary.cpu_utilization() == batch.cpu_utilization()

    def test_vectorized_stream_equals_scalar_stream(self):
        arrivals = _sweep_arrivals(70.0, 400, seed=8)
        scalar = simulate_stream(
            iter(arrivals), _SCHEDULER_FACTORIES["fm"](), cores=6
        )
        vector = simulate_stream(
            iter(arrivals), _SCHEDULER_FACTORIES["fm"](), cores=6, vectorized=True
        )
        assert vector.histogram.state() == scalar.histogram.state()
        assert vector.as_dict() == scalar.as_dict()

    def test_generator_input_consumed_lazily(self):
        """The engine keeps O(running set) request objects when fed a
        generator — completed requests are discarded as they finish."""
        workload = _workload()
        stream = workload.arrival_stream(2000, PoissonProcess(40.0), seed=6)
        summary = simulate_stream(stream, FixedScheduler(2), cores=8)
        assert summary.count == 2000

    def test_faults_accounted(self):
        arrivals = _sweep_arrivals(40.0, 300, seed=55)
        plan = FaultPlan.generate(
            seed=5,
            horizon_ms=arrivals[-1].time_ms + 5_000,
            core_fault_rate_hz=0.5,
            stall_rate_hz=1.0,
            straggler_rate=0.1,
            straggler_mu=0.7,
        )
        batch = simulate(
            arrivals, _SCHEDULER_FACTORIES["fm"](), cores=6, fault_plan=plan
        )
        summary = simulate_stream(
            iter(arrivals), _SCHEDULER_FACTORIES["fm"](), cores=6, fault_plan=plan
        )
        got = summary.fault_stats.as_dict()
        want = batch.fault_stats.as_dict()
        # The streamed collector owns only completion/shed accounting;
        # injection counters come from the shared fault plan machinery.
        assert got["degraded_completions"] == want["degraded_completions"]
        assert got["shed_requests"] == want["shed_requests"]

    def test_shedding_summarized(self):
        from tests.sim.test_engine_equivalence import _interval_table

        arrivals = _sweep_arrivals(200.0, 300, seed=2)
        summary = simulate_stream(
            iter(arrivals),
            FMScheduler(_interval_table(), max_backlog=6),
            cores=4,
        )
        assert summary.shed_count > 0
        assert summary.count + summary.shed_count == 300
        assert 0.0 < summary.admitted_fraction < 1.0
        assert summary.fault_stats.shed_requests == summary.shed_count


class TestStreamSummaryMerge:
    def _two_summaries(self):
        a = simulate_stream(
            iter(_sweep_arrivals(40.0, 200, seed=1)), SequentialScheduler(), cores=4
        )
        b = simulate_stream(
            iter(_sweep_arrivals(40.0, 300, seed=2)), FixedScheduler(2), cores=4
        )
        return a, b

    def test_update_is_exact(self):
        a, b = self._two_summaries()
        merged = a.merge(b)
        assert merged.count == a.count + b.count == 500
        assert merged.duration_ms == a.duration_ms + b.duration_ms
        assert merged.histogram.count == a.histogram.count + b.histogram.count
        # Histogram bucket merge is integer addition — mean stays the
        # exact pooled mean (the histogram tracks the true sum).
        pooled = (
            a.mean_latency_ms() * a.count + b.mean_latency_ms() * b.count
        ) / 500
        assert merged.mean_latency_ms() == pytest.approx(pooled, rel=1e-12)

    def test_merge_is_nondestructive(self):
        a, b = self._two_summaries()
        before = (a.count, a.histogram.state(), a.fault_stats.as_dict())
        a.merge(b)
        assert (a.count, a.histogram.state(), a.fault_stats.as_dict()) == before

    def test_merge_is_order_sensitive_only_in_identity(self):
        a, b = self._two_summaries()
        assert a.merge(b).histogram.state() == b.merge(a).histogram.state()
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    def test_cores_mismatch_rejected(self):
        a, _ = self._two_summaries()
        other = StreamSummary(cores=8)
        with pytest.raises(SimulationError, match="different machines"):
            a.update(other)


class TestStreamingCollector:
    def test_zero_completions_rejected(self):
        collector = StreamingCollector(cores=4)
        with pytest.raises(SimulationError, match="no completed"):
            collector.finalize()

    def test_negative_interval_rejected(self):
        collector = StreamingCollector(cores=4)
        with pytest.raises(SimulationError, match="negative interval"):
            collector.observe_interval(-1.0, 0, 0.0, 0)

    def test_attribution_defaults_off_but_can_be_enabled(self):
        arrivals = _sweep_arrivals(40.0, 100, seed=3)
        default = simulate_stream(iter(arrivals), SequentialScheduler(), cores=4)
        explicit = simulate_stream(
            iter(arrivals), SequentialScheduler(), cores=4, attribution=True
        )
        # Attribution feeds per-request component records only; the
        # streamed summary is identical either way.
        assert default.histogram.state() == explicit.histogram.state()
