"""Tests for the request lifecycle state machine."""

from __future__ import annotations

import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import SimulationError
from repro.sim.request import RequestState, SimRequest

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0])


def _request(seq: float = 100.0) -> SimRequest:
    return SimRequest(0, 10.0, seq, _CURVE)


class TestLifecycle:
    def test_initial_state(self):
        req = _request()
        assert req.state is RequestState.QUEUED
        assert req.remaining_work == 100.0
        assert req.degree == 0
        assert not req.is_finished

    def test_rejects_nonpositive_work(self):
        with pytest.raises(SimulationError):
            SimRequest(0, 0.0, 0.0, _CURVE)

    def test_start(self):
        req = _request()
        req.start(20.0, 2)
        assert req.state is RequestState.RUNNING
        assert req.start_ms == 20.0
        assert req.degree == 2

    def test_double_start_rejected(self):
        req = _request()
        req.start(20.0, 1)
        with pytest.raises(SimulationError):
            req.start(30.0, 1)

    def test_start_with_zero_degree_rejected(self):
        with pytest.raises(SimulationError):
            _request().start(0.0, 0)

    def test_finish_requires_running(self):
        with pytest.raises(SimulationError):
            _request().finish(5.0)

    def test_full_lifecycle_metrics(self):
        req = _request(100.0)
        req.start(20.0, 1)
        req.rate = 1.0
        req.advance(50.0, 1.0)
        req.raise_degree(2)
        req.rate = 1.5
        # remaining 50 work at rate 1.5 -> 33.33 ms
        req.advance(50.0 / 1.5, 2.0)
        assert req.is_finished
        req.finish(20.0 + 50.0 + 50.0 / 1.5)
        assert req.latency_ms == pytest.approx(10.0 + 50.0 + 50.0 / 1.5)
        assert req.execution_ms == pytest.approx(50.0 + 50.0 / 1.5)
        assert req.thread_time_ms == pytest.approx(50.0 + 2 * 50.0 / 1.5)
        assert req.degree_residency[1] == pytest.approx(50.0)
        assert req.degree_residency[2] == pytest.approx(50.0 / 1.5)
        assert 1.0 < req.average_parallelism < 2.0


class TestDegreeChanges:
    def test_raise_degree(self):
        req = _request()
        req.start(0.0, 1)
        assert req.raise_degree(3)
        assert req.degree == 3

    def test_same_degree_is_noop(self):
        req = _request()
        req.start(0.0, 2)
        assert not req.raise_degree(2)

    def test_decrease_rejected(self):
        """The FM invariant: parallelism never decreases."""
        req = _request()
        req.start(0.0, 3)
        with pytest.raises(SimulationError):
            req.raise_degree(2)

    def test_raise_requires_running(self):
        with pytest.raises(SimulationError):
            _request().raise_degree(2)


class TestAdvance:
    def test_ignores_non_running(self):
        req = _request()
        req.advance(10.0, 1.0)
        assert req.remaining_work == 100.0

    def test_overshoot_detected(self):
        req = _request(10.0)
        req.start(0.0, 1)
        req.rate = 1.0
        with pytest.raises(SimulationError):
            req.advance(20.0, 1.0)

    def test_tiny_residue_clamped(self):
        req = _request(10.0)
        req.start(0.0, 1)
        req.rate = 1.0
        req.advance(10.0 + 1e-9, 1.0)
        assert req.remaining_work == 0.0
        assert req.is_finished

    def test_effective_progress_tracks_contention(self):
        req = _request(100.0)
        req.start(0.0, 1)
        req.rate = 0.5
        req.advance(10.0, 0.5, progress_factor=0.5)
        assert req.progress_ms(10.0) == pytest.approx(10.0)
        assert req.effective_progress_ms() == pytest.approx(5.0)

    def test_latency_requires_finish(self):
        req = _request()
        with pytest.raises(SimulationError):
            _ = req.latency_ms
