"""The vectorized engine's correctness bar: :class:`repro.sim.vector.
VectorEngine` must produce **bit-for-bit identical** results to the
scalar :class:`~repro.sim.engine.Engine` on fixed seeds — the design
(slot-order invariant + strictly sequential ``np.cumsum`` reductions)
claims exact equality, strictly stronger than the 1e-9 gate the
benchmark regression check enforces."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.hetero.pools import Topology
from repro.schedulers import FixedScheduler, SequentialScheduler
from repro.sim import simulate
from repro.sim.vector import VectorEngine
from tests.sim.test_engine_equivalence import (
    _SCHEDULER_FACTORIES,
    _assert_identical,
    _sweep_arrivals,
)


def _run_both(arrivals, factory, cores=6, **kwargs):
    scalar = simulate(arrivals, factory(), cores=cores, **kwargs)
    vector = simulate(arrivals, factory(), cores=cores, vectorized=True, **kwargs)
    return scalar, vector


class TestBitIdentityWithScalarEngine:
    @pytest.mark.parametrize("policy", sorted(_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("load", ["light", "saturated"])
    def test_matches_scalar_engine(self, policy, load):
        rps, n = (15.0, 300) if load == "light" else (70.0, 600)
        arrivals = _sweep_arrivals(
            rps, n, seed=zlib.crc32(f"vec/{policy}/{load}".encode())
        )
        scalar, vector = _run_both(arrivals, _SCHEDULER_FACTORIES[policy])
        _assert_identical(vector, scalar)

    @pytest.mark.parametrize("policy", ["fm", "fix4-protected"])
    def test_matches_scalar_engine_under_faults(self, policy):
        arrivals = _sweep_arrivals(40.0, 400, seed=1234)
        plan = FaultPlan.generate(
            seed=5,
            horizon_ms=arrivals[-1].time_ms + 5_000,
            core_fault_rate_hz=0.5,
            stall_rate_hz=1.0,
            straggler_rate=0.1,
            straggler_mu=0.7,
        )
        scalar, vector = _run_both(
            arrivals, _SCHEDULER_FACTORIES[policy], fault_plan=plan
        )
        _assert_identical(vector, scalar)
        assert vector.fault_stats.as_dict() == scalar.fault_stats.as_dict()

    def test_matches_through_overload_drain_compaction(self):
        """A burst far beyond capacity grows the running set past the
        compaction threshold (64 slots), then drains it below half
        occupancy — exercising ``_compact()``'s order-preserving squeeze
        repeatedly while results must stay exact."""
        arrivals = _sweep_arrivals(400.0, 500, seed=77)
        scalar, vector = _run_both(arrivals, lambda: FixedScheduler(4), cores=4)
        _assert_identical(vector, scalar)

    def test_matches_without_attribution(self):
        arrivals = _sweep_arrivals(50.0, 300, seed=31)
        scalar, vector = _run_both(
            arrivals, _SCHEDULER_FACTORIES["fm"], attribution=False
        )
        _assert_identical(vector, scalar)

    def test_degree_residency_matches_values(self):
        """Residency is the one accounting VectorEngine tracks via lazy
        anchors instead of per-quantum increments; totals must still
        agree (same additions, possibly re-associated).  Captured via an
        ``on_exit`` wrapper since records keep only the derived
        ``average_parallelism``."""
        from repro.schedulers import AdaptiveScheduler

        class Capturing(AdaptiveScheduler):
            def __init__(self):
                super().__init__(max_degree=4, target_parallelism=6.0)
                self.residency = {}

            def on_exit(self, ctx, request):
                self.residency[request.rid] = dict(request.degree_residency)
                return super().on_exit(ctx, request)

        arrivals = _sweep_arrivals(60.0, 300, seed=9)
        scalar_sched, vector_sched = Capturing(), Capturing()
        scalar = simulate(arrivals, scalar_sched, cores=6)
        vector = simulate(arrivals, vector_sched, cores=6, vectorized=True)
        _assert_identical(vector, scalar)
        assert set(vector_sched.residency) == set(scalar_sched.residency)
        for rid, theirs in scalar_sched.residency.items():
            ours = vector_sched.residency[rid]
            assert set(ours) == set(theirs)
            for degree, ms in theirs.items():
                assert ours[degree] == pytest.approx(ms, abs=1e-9)


class TestUnsupportedFeatures:
    def test_topology_rejected(self):
        topology = Topology.big_little(big=2, little=2)
        with pytest.raises(SimulationError, match="topolog"):
            VectorEngine(
                cores=4, scheduler=SequentialScheduler(), topology=topology
            )

    def test_live_plane_rejected(self):
        from repro.observe.live import LivePlane

        with pytest.raises(SimulationError, match="live"):
            VectorEngine(
                cores=4, scheduler=SequentialScheduler(), live=LivePlane()
            )


class TestVectorizedPerformanceShape:
    def test_identical_generation_counts(self):
        """Sanity: the vector engine processes the same event stream
        (completion count and simulated horizon), not a re-derived one."""
        arrivals = _sweep_arrivals(70.0, 400, seed=13)
        scalar, vector = _run_both(arrivals, _SCHEDULER_FACTORIES["fix4"])
        assert len(vector.records) == len(scalar.records) == 400
        assert vector.records[-1].finish_ms == scalar.records[-1].finish_ms
        assert np.array_equal(
            np.array([r.latency_ms for r in vector.records]),
            np.array([r.latency_ms for r in scalar.records]),
        )
