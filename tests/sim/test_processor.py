"""Tests for occupancy-based core allocation and the boost budget."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.speedup import TabulatedSpeedup
from repro.errors import SimulationError
from repro.sim.processor import BoostController, compute_shares, occupancy
from repro.sim.request import SimRequest

_CURVE = TabulatedSpeedup([1.0, 1.6, 2.0, 2.4])


def _running(degree: int, rid: int = 0, boosted: bool = False) -> SimRequest:
    req = SimRequest(rid, 0.0, 100.0, _CURVE)
    req.start(0.0, degree)
    req.boosted = boosted
    return req


class TestOccupancy:
    def test_sequential_occupies_one_core(self):
        assert occupancy(1.0, 1, 0.5) == pytest.approx(1.0)

    def test_spin_zero_occupies_useful_only(self):
        assert occupancy(2.0, 4, 0.0) == pytest.approx(2.0)

    def test_spin_one_occupies_all_threads(self):
        assert occupancy(2.0, 4, 1.0) == pytest.approx(4.0)

    def test_interpolates(self):
        assert occupancy(2.0, 4, 0.25) == pytest.approx(2.5)

    def test_rejects_bad_speedup(self):
        with pytest.raises(SimulationError):
            occupancy(5.0, 4, 0.25)
        with pytest.raises(SimulationError):
            occupancy(0.5, 1, 0.25)


class TestComputeShares:
    def test_uncontended_runs_full_speed(self):
        reqs = [_running(1, 0), _running(2, 1)]
        shares = compute_shares(reqs, cores=8, spin_fraction=0.25)
        assert all(a.progress_factor == pytest.approx(1.0) for a in shares.values())

    def test_oversubscription_scales_down_proportionally(self):
        # occupancy per request = 2.4 + 0.25 * (4 - 2.4) = 2.8
        reqs = [_running(4, rid) for rid in range(4)]
        shares = compute_shares(reqs, cores=5, spin_fraction=0.25)
        for alloc in shares.values():
            assert alloc.progress_factor == pytest.approx(5.0 / 11.2)
            assert alloc.core_alloc == pytest.approx(2.8 * 5.0 / 11.2)

    def test_total_core_alloc_never_exceeds_cores(self):
        reqs = [_running(4, rid) for rid in range(10)]
        shares = compute_shares(reqs, cores=6, spin_fraction=0.25)
        assert sum(a.core_alloc for a in shares.values()) <= 6.0 + 1e-9

    def test_boosted_requests_keep_full_speed(self):
        boosted = _running(4, 0, boosted=True)
        others = [_running(4, rid) for rid in range(1, 8)]
        shares = compute_shares([boosted, *others], cores=6, spin_fraction=0.25)
        assert shares[0].progress_factor == pytest.approx(1.0)
        assert shares[1].progress_factor < 1.0

    def test_boosted_capacity_comes_off_the_top(self):
        boosted = _running(4, 0, boosted=True)  # occupancy 2.8
        other = _running(4, 1)
        shares = compute_shares([boosted, other], cores=4, spin_fraction=0.25)
        assert shares[1].progress_factor == pytest.approx(1.2 / 2.8)

    def test_empty_system(self):
        assert compute_shares([], cores=4) == {}

    def test_rejects_bad_spin(self):
        with pytest.raises(SimulationError):
            compute_shares([], cores=4, spin_fraction=1.5)

    @given(
        degrees=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=12),
        cores=st.integers(min_value=1, max_value=16),
        spin=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_invariants(self, degrees, cores, spin):
        reqs = [_running(d, rid) for rid, d in enumerate(degrees)]
        shares = compute_shares(reqs, cores=cores, spin_fraction=spin)
        total = sum(a.core_alloc for a in shares.values())
        assert total <= cores + 1e-9
        for alloc in shares.values():
            assert 0.0 <= alloc.progress_factor <= 1.0 + 1e-9


class TestBoostController:
    def test_grant_and_release(self):
        ctl = BoostController(cores=8)
        req = _running(4, 0)
        req.boosted = False
        assert ctl.try_boost(req, 4)
        assert req.boosted
        assert ctl.boosted_threads == 4
        ctl.release(req)
        assert ctl.boosted_threads == 0
        assert not req.boosted

    def test_budget_strictly_below_cores(self):
        """Section 4.2: boosted threads stay < cores."""
        ctl = BoostController(cores=8)
        a, b = _running(4, 0), _running(4, 1)
        a.boosted = b.boosted = False
        assert ctl.try_boost(a, 4)
        assert not ctl.try_boost(b, 4)  # 4 + 4 >= 8
        assert ctl.try_boost(b, 3)

    def test_idempotent_grant(self):
        ctl = BoostController(cores=8)
        req = _running(4, 0)
        req.boosted = False
        assert ctl.try_boost(req, 4)
        assert ctl.try_boost(req, 4)
        assert ctl.boosted_threads == 4

    def test_release_unboosted_is_noop(self):
        ctl = BoostController(cores=8)
        ctl.release(_running(2, 5))
        assert ctl.boosted_threads == 0

    def test_reset(self):
        ctl = BoostController(cores=8)
        req = _running(2, 0)
        req.boosted = False
        ctl.try_boost(req, 2)
        ctl.reset()
        assert ctl.boosted_threads == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            BoostController(cores=0)
        ctl = BoostController(cores=4)
        with pytest.raises(SimulationError):
            ctl.try_boost(_running(1, 0), 0)
