"""Shared fixtures: small deterministic profiles, workloads, and tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandProfile
from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.core.table import IntervalTable
from repro.workloads.workload import Workload


@pytest.fixture
def fig5_profile() -> DemandProfile:
    """The paper's Figure 5 worked example: 50/150 ms, s(3) = 2."""
    seq = np.array([50.0, 150.0])
    speedups = np.array([[1.0, 1.5, 2.0], [1.0, 1.5, 2.0]])
    return DemandProfile(seq, speedups)


@pytest.fixture
def small_profile() -> DemandProfile:
    """A 40-request heavy-tailed profile with a shared sublinear curve."""
    rng = np.random.default_rng(7)
    seq = np.sort(rng.lognormal(np.log(80.0), 0.8, size=40))
    curve = TabulatedSpeedup([1.0, 1.8, 2.4, 2.8])
    model = UniformSpeedupModel(curve)
    return DemandProfile.from_model(seq, model, max_degree=4)


@pytest.fixture
def small_table(small_profile: DemandProfile) -> IntervalTable:
    """An interval table over the small profile (coarse grid)."""
    config = SearchConfig(
        max_degree=3, target_parallelism=8.0, step_ms=50.0, max_load=10
    )
    return build_interval_table(small_profile, config)


@pytest.fixture
def tiny_workload() -> Workload:
    """A fast bimodal workload for simulator-level tests."""
    curve = TabulatedSpeedup([1.0, 1.7, 2.2, 2.5])

    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        short = rng.uniform(5.0, 20.0, size=n)
        long_ = rng.uniform(100.0, 300.0, size=n)
        is_long = rng.random(n) < 0.2
        return np.where(is_long, long_, short)

    return Workload(
        name="tiny",
        sampler=sampler,
        speedup_model=UniformSpeedupModel(curve),
        max_degree=4,
        profile_size=300,
    )
