"""Behavioural tests for SEQ, FIX-N, Simple-interval, Adaptive, and RC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.schedulers import (
    AdaptiveScheduler,
    ClairvoyantScheduler,
    FixedScheduler,
    SequentialScheduler,
    SimpleIntervalScheduler,
)
from repro.schedulers.clairvoyant import tune_threshold
from repro.sim.engine import ArrivalSpec, simulate
from repro.workloads.lucene import lucene_workload

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _spec(t: float, seq: float) -> ArrivalSpec:
    return ArrivalSpec(t, seq, _CURVE)


class TestSequential:
    def test_everything_runs_at_degree_one(self):
        result = simulate(
            [_spec(0.0, 50.0), _spec(1.0, 400.0)], SequentialScheduler(), cores=8
        )
        assert all(r.final_degree == 1 for r in result.records)
        assert all(r.average_parallelism == pytest.approx(1.0) for r in result.records)

    def test_no_quantum_events(self):
        assert SequentialScheduler().uses_quantum is False


class TestFixed:
    def test_constant_degree(self):
        result = simulate([_spec(0.0, 120.0)], FixedScheduler(3), cores=8)
        assert result.records[0].final_degree == 3
        assert result.records[0].average_parallelism == pytest.approx(3.0)

    def test_load_protection_falls_back_to_sequential(self):
        # 4 simultaneous arrivals with protection threshold 3: the first
        # two see load < 3 and parallelize; the rest run sequentially.
        specs = [_spec(0.0, 100.0) for _ in range(4)]
        result = simulate(
            specs, FixedScheduler(3, load_protection=3), cores=16
        )
        degrees = sorted(r.final_degree for r in result.records)
        assert degrees == [1, 1, 3, 3]

    def test_boost_after_ms_enables_quantum(self):
        plain = FixedScheduler(3)
        boosting = FixedScheduler(3, boost_after_ms=50.0)
        assert plain.uses_quantum is False
        assert boosting.uses_quantum is True

    def test_boost_is_granted_to_old_requests(self):
        scheduler = FixedScheduler(2, boost_after_ms=30.0)
        result = simulate([_spec(0.0, 200.0)], scheduler, cores=8, quantum_ms=5.0)
        assert result.records[0].boosted

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedScheduler(0)
        with pytest.raises(ConfigurationError):
            FixedScheduler(2, load_protection=0)
        with pytest.raises(ConfigurationError):
            FixedScheduler(2, boost_after_ms=-1.0)

    def test_name_encodes_configuration(self):
        assert FixedScheduler(4).name == "FIX-4"
        assert "lp30" in FixedScheduler(3, load_protection=30).name
        assert "boost" in FixedScheduler(3, boost_after_ms=10.0).name


class TestSimpleInterval:
    def test_degree_grows_with_execution_time(self):
        scheduler = SimpleIntervalScheduler(50.0, max_degree=4)
        result = simulate([_spec(0.0, 300.0)], scheduler, cores=8, quantum_ms=1.0)
        record = result.records[0]
        assert record.final_degree > 1

    def test_short_requests_stay_sequential(self):
        scheduler = SimpleIntervalScheduler(100.0, max_degree=4)
        result = simulate([_spec(0.0, 20.0)], scheduler, cores=8, quantum_ms=1.0)
        assert result.records[0].final_degree == 1

    def test_degree_capped(self):
        scheduler = SimpleIntervalScheduler(10.0, max_degree=3)
        result = simulate([_spec(0.0, 500.0)], scheduler, cores=8, quantum_ms=1.0)
        assert result.records[0].final_degree == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimpleIntervalScheduler(0.0, 4)
        with pytest.raises(ConfigurationError):
            SimpleIntervalScheduler(10.0, 0)


class TestAdaptive:
    def test_low_load_parallelizes_aggressively(self):
        scheduler = AdaptiveScheduler(max_degree=4, target_parallelism=24)
        result = simulate([_spec(0.0, 100.0)], scheduler, cores=8)
        assert result.records[0].final_degree == 4

    def test_high_load_degrades_to_sequential(self):
        scheduler = AdaptiveScheduler(max_degree=4, target_parallelism=8)
        specs = [_spec(0.0, 200.0) for _ in range(10)]
        result = simulate(specs, scheduler, cores=16)
        # the 9th+ arrivals see load >= 9 -> degree 8 // 9 = 0 -> 1
        degrees = [r.final_degree for r in sorted(result.records, key=lambda r: r.rid)]
        assert degrees[0] == 4
        assert degrees[-1] == 1

    def test_degree_is_constant_after_start(self):
        assert AdaptiveScheduler(4, 24).uses_quantum is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveScheduler(0, 24)
        with pytest.raises(ConfigurationError):
            AdaptiveScheduler(4, 0.5)


class TestClairvoyant:
    def test_threshold_split(self):
        scheduler = ClairvoyantScheduler(threshold_ms=100.0, degree=4)
        result = simulate(
            [_spec(0.0, 50.0), _spec(1.0, 300.0)], scheduler, cores=8
        )
        by_rid = sorted(result.records, key=lambda r: r.rid)
        assert by_rid[0].final_degree == 1
        assert by_rid[1].final_degree == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClairvoyantScheduler(-1.0, 4)
        with pytest.raises(ConfigurationError):
            ClairvoyantScheduler(100.0, 0)


class TestTuneThreshold:
    def test_threshold_is_interior(self):
        """The tuned Lucene threshold is neither tiny (parallelize all =
        FIX-N) nor the max (never parallelize = SEQ); the paper found
        225 ms."""
        profile = lucene_workload(profile_size=2000).profile
        threshold = tune_threshold(profile, degree=4, target_parallelism=24.0)
        assert profile.percentile(0.05) < threshold < profile.percentile(0.99)

    def test_threshold_meets_the_budget(self):
        profile = lucene_workload(profile_size=2000).profile
        target = 24.0
        load = 12
        threshold = tune_threshold(
            profile, degree=4, target_parallelism=target, load=load
        )
        is_long = profile.seq >= threshold
        speed = profile.speedups[:, 3]
        times = np.where(is_long, profile.seq / speed, profile.seq)
        busy = np.where(is_long, 4 * profile.seq / speed, profile.seq)
        ap = load * busy.mean() / times.mean()
        assert ap <= target + 1e-6

    def test_tighter_budget_raises_threshold(self):
        profile = lucene_workload(profile_size=2000).profile
        loose = tune_threshold(profile, degree=4, target_parallelism=40.0, load=12)
        tight = tune_threshold(profile, degree=4, target_parallelism=16.0, load=12)
        assert tight >= loose
