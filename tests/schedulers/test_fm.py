"""Behavioural tests for the FM online scheduler."""

from __future__ import annotations

import pytest

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.speedup import TabulatedSpeedup
from repro.core.table import IntervalTable
from repro.errors import ConfigurationError
from repro.schedulers import FMScheduler, SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _spec(t: float, seq: float) -> ArrivalSpec:
    return ArrivalSpec(t, seq, _CURVE)


def _table() -> IntervalTable:
    """Load 1-2: immediate d4.  Load 3-4: d1 then d2@50 / d4@100.
    Load 5: delayed start.  Load >= 6: e1."""
    return IntervalTable(
        [
            Schedule([ScheduleStep(0.0, 4)]),
            Schedule([ScheduleStep(0.0, 4)]),
            Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 2), ScheduleStep(100.0, 4)]),
            Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 2), ScheduleStep(100.0, 4)]),
            Schedule([ScheduleStep(30.0, 1), ScheduleStep(80.0, 2)]),
            Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 2)], wait_for_exit=True),
        ]
    )


class TestConstruction:
    def test_rejects_bad_progress_mode(self):
        with pytest.raises(ConfigurationError):
            FMScheduler(_table(), progress="sideways")

    def test_names(self):
        assert FMScheduler(_table()).name == "FM"
        assert FMScheduler(_table(), boosting=False).name == "FM-noboost"
        assert "wall" in FMScheduler(_table(), progress="wall").name


class TestLowLoad:
    def test_single_request_starts_at_row_degree(self):
        result = simulate([_spec(0.0, 100.0)], FMScheduler(_table()), cores=8)
        record = result.records[0]
        assert record.final_degree == 4
        assert record.latency_ms == pytest.approx(100.0 / 2.4)


class TestIncrementalClimb:
    def test_long_request_climbs_short_stays_sequential(self):
        # Two long companions occupy the system (they arrive at loads 1
        # and 2, so they start at degree 4); the later short and long
        # arrivals both index row 3+ and start sequentially.  The short
        # finishes before the 50 ms step; the long climbs to degree 4.
        specs = [
            _spec(0.0, 600.0),
            _spec(0.0, 600.0),
            _spec(1.0, 30.0),
            _spec(1.0, 600.0),
        ]
        result = simulate(specs, FMScheduler(_table()), cores=32, quantum_ms=5.0)
        short = [r for r in result.records if r.rid == 2][0]
        late_long = [r for r in result.records if r.rid == 3][0]
        assert short.final_degree == 1
        assert late_long.final_degree == 4
        assert late_long.average_parallelism < 4.0  # climbed incrementally

    def test_degrees_never_decrease(self):
        # The late long request climbs under load; when the early
        # requests exit and load drops to 1 (row: d4 immediately), the
        # climbed degree holds and keeps climbing — never down.
        specs = [_spec(0.0, 100.0), _spec(0.0, 100.0), _spec(1.0, 400.0)]
        result = simulate(specs, FMScheduler(_table()), cores=32, quantum_ms=5.0)
        long_record = max(result.records, key=lambda r: r.seq_ms)
        assert long_record.final_degree == 4

    def test_load_spike_slows_the_climb(self):
        # Alone, a 300 ms request under row 1 runs at d4 immediately.
        # Arriving behind three others (load 4), it starts sequential.
        alone = simulate([_spec(0.0, 300.0)], FMScheduler(_table()), cores=16)
        crowded = simulate(
            [_spec(0.0, 300.0)] * 3 + [_spec(1.0, 300.0)],
            FMScheduler(_table()),
            cores=32,
            quantum_ms=5.0,
        )
        target = [r for r in crowded.records if r.rid == 3][0]
        assert alone.records[0].average_parallelism == pytest.approx(4.0)
        assert target.average_parallelism < 4.0


class TestAdmission:
    def test_delay_row_defers_start(self):
        # Fifth simultaneous arrival sees load 5 -> wait 30 ms.
        specs = [_spec(0.0, 500.0)] * 5
        result = simulate(specs, FMScheduler(_table()), cores=32, quantum_ms=5.0)
        starts = sorted(r.start_ms for r in result.records)
        assert starts[3] == pytest.approx(0.0)
        assert starts[4] > 0.0

    def test_e1_row_queues_until_exit(self):
        specs = [_spec(0.0, 100.0)] * 6 + [_spec(1.0, 10.0)]
        result = simulate(specs, FMScheduler(_table()), cores=32, quantum_ms=5.0)
        last = [r for r in result.records if r.rid == 6][0]
        assert last.queueing_ms > 0.0


class TestBoosting:
    def test_boost_granted_on_step_to_max_degree(self):
        # The late long request climbs the load-3 row; stepping to d4
        # grants the boost.
        specs = [_spec(0.0, 600.0), _spec(0.0, 600.0), _spec(1.0, 600.0)]
        result = simulate(specs, FMScheduler(_table()), cores=16, quantum_ms=5.0)
        climber = [r for r in result.records if r.rid == 2][0]
        assert climber.final_degree == 4
        assert climber.boosted

    def test_requests_starting_at_max_degree_are_not_boosted(self):
        """Boost fires on *increasing* to the max degree, not when a
        low-load row starts a request there (Section 4.2)."""
        result = simulate([_spec(0.0, 600.0)], FMScheduler(_table()), cores=16)
        assert result.records[0].final_degree == 4
        assert not result.records[0].boosted

    def test_no_boost_when_disabled(self):
        specs = [_spec(0.0, 600.0), _spec(0.0, 600.0), _spec(1.0, 600.0)]
        result = simulate(
            specs, FMScheduler(_table(), boosting=False), cores=16, quantum_ms=5.0
        )
        assert not any(r.boosted for r in result.records)


class TestProgressModes:
    def test_wall_climbs_at_least_as_fast(self):
        """Under contention, wall-clock progress reaches thresholds
        earlier than effective progress, so wall-mode parallelism is
        weakly higher."""
        specs = [_spec(0.0, 400.0)] * 4
        wall = simulate(
            specs, FMScheduler(_table(), progress="wall"), cores=3,
            quantum_ms=5.0, spin_fraction=1.0,
        )
        effective = simulate(
            specs, FMScheduler(_table(), progress="effective"), cores=3,
            quantum_ms=5.0, spin_fraction=1.0,
        )
        assert wall.average_threads() >= effective.average_threads() - 1e-9

    def test_modes_agree_without_contention(self):
        specs = [_spec(0.0, 400.0)]
        wall = simulate(specs, FMScheduler(_table(), progress="wall"), cores=8)
        eff = simulate(specs, FMScheduler(_table(), progress="effective"), cores=8)
        assert wall.records[0].latency_ms == pytest.approx(eff.records[0].latency_ms)


class TestAgainstSequential:
    def test_fm_tail_beats_sequential_under_load(self, tiny_workload):
        from repro.core.search import SearchConfig, build_interval_table
        from repro.experiments.runner import run_policy

        profile = tiny_workload.profile
        table = build_interval_table(
            profile,
            SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=25.0),
        )
        fm = run_policy(
            FMScheduler(table), tiny_workload, rps=60.0, cores=4,
            num_requests=300, seed=5, spin_fraction=0.25,
        )
        seq = run_policy(
            SequentialScheduler(), tiny_workload, rps=60.0, cores=4,
            num_requests=300, seed=5, spin_fraction=0.25,
        )
        assert fm.tail_latency_ms() < seq.tail_latency_ms()
