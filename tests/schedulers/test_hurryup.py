"""HurryUpScheduler: fixed degrees, deadline-driven big-core rescue."""

from __future__ import annotations

import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.hetero import Topology
from repro.schedulers import FixedScheduler, HurryUpScheduler
from repro.sim.engine import ArrivalSpec, simulate

_CURVE = TabulatedSpeedup([1.0, 1.6, 2.1, 2.5])


def _arrivals(specs):
    return [ArrivalSpec(t, s, _CURVE) for t, s in specs]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"degree": 0},
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"endangered_fraction": 0.0},
            {"endangered_fraction": 1.5},
            {"load_protection": 0},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            HurryUpScheduler(**kwargs)

    def test_name_and_threshold(self):
        scheduler = HurryUpScheduler(degree=3, deadline_ms=200.0,
                                     endangered_fraction=0.4)
        assert scheduler.name == "Hurry-up-3"
        assert scheduler.endangered_age_ms == pytest.approx(80.0)
        assert HurryUpScheduler(load_protection=30).name.endswith("/lp30")


class TestPlacement:
    def test_everything_starts_little(self):
        topo = Topology.big_little(big=2, little=4)
        # Short requests finish before the endangerment age: they must
        # live and die on the little pool.
        result = simulate(
            _arrivals([(0.0, 10.0), (5.0, 10.0)]),
            HurryUpScheduler(degree=2, deadline_ms=200.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        for record in result.records:
            assert record.pool == 1
            assert record.migrations == 0

    def test_endangered_request_migrates_to_big(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        # 300 ms of sequential demand at degree 1 on little: crosses
        # the 80 ms endangerment age mid-run and must move to big.
        result = simulate(
            _arrivals([(0.0, 300.0)]),
            HurryUpScheduler(degree=1, deadline_ms=200.0,
                             endangered_fraction=0.4),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        record = result.records[0]
        assert record.pool == 0
        assert record.migrations == 1
        # 80 ms on little + remaining 220 ms at 2x: well under 300 ms.
        assert record.latency_ms < 300.0

    def test_rescue_beats_staying_on_little(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        spec = _arrivals([(0.0, 300.0)])
        hurry = simulate(
            spec, HurryUpScheduler(degree=1, deadline_ms=200.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        fixed = simulate(
            spec, FixedScheduler(1), cores=6, quantum_ms=5.0,
            topology=Topology.homogeneous(6),
        )
        assert hurry.records[0].latency_ms < fixed.records[0].latency_ms


class TestHomogeneousDegeneration:
    def test_tracks_fixed_on_legacy_engine(self):
        # No topology: migration is a no-op and Hurry-up is FIX-N.
        specs = _arrivals([(float(i) * 6.0, 20.0 + i % 7) for i in range(60)])
        hurry = simulate(specs, HurryUpScheduler(degree=3), cores=4)
        fixed = simulate(specs, FixedScheduler(3), cores=4)
        assert [r.final_degree for r in hurry.records] == [
            r.final_degree for r in fixed.records
        ]
        assert hurry.tail_latency_ms(0.99) == pytest.approx(
            fixed.tail_latency_ms(0.99), rel=1e-9
        )

    def test_load_protection_degrades_to_sequential(self):
        specs = _arrivals([(0.0, 50.0)] * 8)
        result = simulate(
            specs, HurryUpScheduler(degree=3, load_protection=2), cores=4
        )
        protected = [r for r in result.records if r.final_degree == 1]
        assert len(protected) >= 6
