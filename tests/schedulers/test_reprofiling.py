"""Tests for the online re-profiling FM extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.errors import ConfigurationError
from repro.experiments.runner import run_policy
from repro.schedulers import ReprofilingFMScheduler
from repro.workloads.workload import Workload

_CURVE = TabulatedSpeedup([1.0, 1.7, 2.2, 2.5])
_MODEL = UniformSpeedupModel(_CURVE)
_SEARCH = SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=50.0, num_bins=16)


def _workload(scale: float = 1.0) -> Workload:
    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        return scale * rng.lognormal(np.log(60.0), 0.8, size=n)

    return Workload(
        name="repro-test", sampler=sampler, speedup_model=_MODEL,
        max_degree=4, profile_size=200,
    )


def _initial_table():
    profile = _workload().profile
    return build_interval_table(profile, _SEARCH)


class TestConstruction:
    def test_validation(self):
        table = _initial_table()
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, window=1)
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, rebuild_every_ms=0)
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, min_samples=1)

    def test_name(self):
        scheduler = ReprofilingFMScheduler(_initial_table(), _MODEL, _SEARCH)
        assert scheduler.name == "FM-reprofile"


class TestRebuilding:
    def test_rebuilds_happen_on_schedule(self):
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=100, rebuild_every_ms=1_000.0, min_samples=20,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=300, seed=1)
        assert len(scheduler.rebuilds) >= 2
        assert all(b > a for a, b in zip(scheduler.rebuilds, scheduler.rebuilds[1:]))

    def test_no_rebuild_below_min_samples(self):
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=100, rebuild_every_ms=1.0, min_samples=1_000,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=100, seed=2)
        assert scheduler.rebuilds == []

    def test_reset_restores_initial_table(self):
        initial = _initial_table()
        scheduler = ReprofilingFMScheduler(
            initial, _MODEL, _SEARCH,
            window=50, rebuild_every_ms=500.0, min_samples=20,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=200, seed=3)
        assert scheduler.table is not initial
        scheduler.reset()
        assert scheduler.table is initial
        assert scheduler.rebuilds == []

    def test_rebuilt_table_reflects_observed_demand(self):
        """After observing a 3x heavier workload, the rebuilt table's
        degree-step times stretch accordingly."""
        initial = _initial_table()
        scheduler = ReprofilingFMScheduler(
            initial, _MODEL, _SEARCH,
            window=150, rebuild_every_ms=500.0, min_samples=50,
        )
        run_policy(scheduler, _workload(scale=3.0), rps=20.0, cores=8,
                   num_requests=300, seed=4)
        assert scheduler.rebuilds
        # A mid-load row's final degree step should come later than in
        # the stale table (demand tripled).
        load = min(4, len(initial))
        old_steps = initial.lookup(load).steps
        new_steps = scheduler.table.lookup(load).steps
        assert new_steps[-1].time_ms >= old_steps[-1].time_ms
