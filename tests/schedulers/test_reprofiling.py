"""Tests for the online re-profiling FM extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.errors import ConfigurationError
from repro.experiments.runner import run_policy
from repro.schedulers import ReprofilingFMScheduler
from repro.workloads.workload import Workload

_CURVE = TabulatedSpeedup([1.0, 1.7, 2.2, 2.5])
_MODEL = UniformSpeedupModel(_CURVE)
_SEARCH = SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=50.0, num_bins=16)


def _workload(scale: float = 1.0) -> Workload:
    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        return scale * rng.lognormal(np.log(60.0), 0.8, size=n)

    return Workload(
        name="repro-test", sampler=sampler, speedup_model=_MODEL,
        max_degree=4, profile_size=200,
    )


def _initial_table():
    profile = _workload().profile
    return build_interval_table(profile, _SEARCH)


class TestConstruction:
    def test_validation(self):
        table = _initial_table()
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, window=1)
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, rebuild_every_ms=0)
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(table, _MODEL, _SEARCH, min_samples=1)

    def test_name(self):
        scheduler = ReprofilingFMScheduler(_initial_table(), _MODEL, _SEARCH)
        assert scheduler.name == "FM-reprofile"


class TestRebuilding:
    def test_rebuilds_happen_on_schedule(self):
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=100, rebuild_every_ms=1_000.0, min_samples=20,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=300, seed=1)
        assert len(scheduler.rebuilds) >= 2
        assert all(b > a for a, b in zip(scheduler.rebuilds, scheduler.rebuilds[1:]))

    def test_no_rebuild_below_min_samples(self):
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=100, rebuild_every_ms=1.0, min_samples=1_000,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=100, seed=2)
        assert scheduler.rebuilds == []

    def test_reset_restores_initial_table(self):
        initial = _initial_table()
        scheduler = ReprofilingFMScheduler(
            initial, _MODEL, _SEARCH,
            window=50, rebuild_every_ms=500.0, min_samples=20,
        )
        run_policy(scheduler, _workload(), rps=50.0, cores=4,
                   num_requests=200, seed=3)
        assert scheduler.table is not initial
        scheduler.reset()
        assert scheduler.table is initial
        assert scheduler.rebuilds == []

    def test_rebuilt_table_reflects_observed_demand(self):
        """After observing a 3x heavier workload, the rebuilt table's
        degree-step times stretch accordingly."""
        initial = _initial_table()
        scheduler = ReprofilingFMScheduler(
            initial, _MODEL, _SEARCH,
            window=150, rebuild_every_ms=500.0, min_samples=50,
        )
        run_policy(scheduler, _workload(scale=3.0), rps=20.0, cores=8,
                   num_requests=300, seed=4)
        assert scheduler.rebuilds
        # A mid-load row's final degree step should come later than in
        # the stale table (demand tripled).
        load = min(4, len(initial))
        old_steps = initial.lookup(load).steps
        new_steps = scheduler.table.lookup(load).steps
        assert new_steps[-1].time_ms >= old_steps[-1].time_ms


class TestDriftTriggeredRebuilds:
    """The SLO monitor closes the loop on latency, not just the timer."""

    @staticmethod
    def _shifted_arrivals(seed: int):
        """A trace whose demand mix triples mid-run."""
        from repro.sim.engine import ArrivalSpec
        from repro.workloads.arrivals import PoissonProcess

        rng = np.random.default_rng(seed)
        calm = _workload(1.0).arrivals(250, PoissonProcess(40.0), rng)
        heavy = _workload(3.0).arrivals(250, PoissonProcess(40.0), rng)
        offset = calm[-1].time_ms
        return list(calm) + [
            ArrivalSpec(
                time_ms=a.time_ms + offset, seq_ms=a.seq_ms, speedup=a.speedup
            )
            for a in heavy
        ]

    @staticmethod
    def _monitor():
        from repro.observe import SLOMonitor, SLOTarget

        return SLOMonitor(
            SLOTarget(percentile=0.9, threshold_ms=400.0),
            short_window_ms=1_500.0,
            long_window_ms=8_000.0,
            drift_factor=1.4,
            min_samples=25,
        )

    def test_drift_rebuild_fires_ahead_of_timer(self):
        """With the timer effectively off, only drift can rebuild —
        and the mid-run mix shift makes it fire."""
        from repro.sim.engine import simulate

        arrivals = self._shifted_arrivals(seed=11)
        shift_ms = arrivals[250].time_ms
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=200, rebuild_every_ms=10_000_000.0, min_samples=50,
            slo_monitor=self._monitor(), drift_cooldown_ms=500.0,
        )
        simulate(arrivals, scheduler, cores=4)
        assert scheduler.drift_rebuilds, "mix shift never triggered a rebuild"
        assert scheduler.rebuilds == scheduler.drift_rebuilds
        assert all(t > shift_ms for t in scheduler.drift_rebuilds)

    def test_rebuilt_table_tracks_the_new_mix(self):
        """After the drift rebuild the table reflects 3x demand: the
        final degree step of a mid-load row comes later."""
        from repro.sim.engine import simulate

        initial = _initial_table()
        scheduler = ReprofilingFMScheduler(
            initial, _MODEL, _SEARCH,
            window=200, rebuild_every_ms=10_000_000.0, min_samples=50,
            slo_monitor=self._monitor(), drift_cooldown_ms=500.0,
        )
        simulate(self._shifted_arrivals(seed=11), scheduler, cores=4)
        assert scheduler.drift_rebuilds
        load = min(4, len(initial))
        old_steps = initial.lookup(load).steps
        new_steps = scheduler.table.lookup(load).steps
        assert new_steps[-1].time_ms >= old_steps[-1].time_ms

    def test_p99_recovers_within_one_cooldown(self):
        """Post-rebuild completions beat the stale static table's p99
        over the same trace suffix."""
        from repro.sim.engine import simulate
        from repro.schedulers import FMScheduler

        arrivals = self._shifted_arrivals(seed=11)
        reprofiling = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=200, rebuild_every_ms=10_000_000.0, min_samples=50,
            slo_monitor=self._monitor(), drift_cooldown_ms=500.0,
        )
        adaptive = simulate(arrivals, reprofiling, cores=4)
        static = simulate(arrivals, FMScheduler(_initial_table()), cores=4)
        assert reprofiling.drift_rebuilds
        settle_ms = reprofiling.drift_rebuilds[0] + 500.0

        def suffix_p99(result):
            lats = sorted(
                r.latency_ms for r in result.records if r.finish_ms >= settle_ms
            )
            assert lats
            return lats[max(0, int(np.ceil(0.99 * len(lats))) - 1)]

        assert suffix_p99(adaptive) <= suffix_p99(static)

    def test_reset_resets_monitor(self):
        monitor = self._monitor()
        scheduler = ReprofilingFMScheduler(
            _initial_table(), _MODEL, _SEARCH,
            window=200, rebuild_every_ms=1_000.0, min_samples=50,
            slo_monitor=monitor, drift_cooldown_ms=500.0,
        )
        run_policy(scheduler, _workload(), rps=40.0, cores=4,
                   num_requests=200, seed=6)
        assert monitor.observed > 0
        scheduler.reset()
        assert monitor.observed == 0
        assert scheduler.drift_rebuilds == []

    def test_drift_cooldown_validation(self):
        with pytest.raises(ConfigurationError):
            ReprofilingFMScheduler(
                _initial_table(), _MODEL, _SEARCH, drift_cooldown_ms=0.0
            )
