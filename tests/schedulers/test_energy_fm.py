"""EnergyAwareFMScheduler: FM degrees, little-first placement, aged rescue."""

from __future__ import annotations

import pytest

from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.hetero import Topology
from repro.schedulers import EnergyAwareFMScheduler, FMScheduler
from repro.sim.engine import ArrivalSpec, simulate
from tests.sim.test_engine_equivalence import (
    _assert_identical,
    _interval_table,
    _sweep_arrivals,
)

_CURVE = TabulatedSpeedup([1.0, 1.6, 2.1, 2.5])


def _arrivals(specs):
    return [ArrivalSpec(t, s, _CURVE) for t, s in specs]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rescue_age_ms": 0.0},
            {"rescue_age_ms": -10.0},
            {"min_free_cores": -0.5},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            EnergyAwareFMScheduler(_interval_table(), **kwargs)

    def test_name_prefixes_fm(self):
        scheduler = EnergyAwareFMScheduler(_interval_table())
        assert scheduler.name.startswith("EA-FM")


class TestSinglePoolBitIdentity:
    """The docstring's promise: EA-FM == FM when there is one pool."""

    @pytest.mark.parametrize("load", ["light", "saturated"])
    def test_identical_to_plain_fm(self, load):
        rps, n = (15.0, 300) if load == "light" else (70.0, 600)
        arrivals = _sweep_arrivals(rps, n, seed=hash(load) & 0xFFFF)
        topo = Topology.homogeneous(6)
        plain = simulate(
            arrivals, FMScheduler(_interval_table()), cores=6, topology=topo
        )
        energy_aware = simulate(
            arrivals, EnergyAwareFMScheduler(_interval_table()), cores=6,
            topology=topo,
        )
        _assert_identical(plain, energy_aware)
        assert all(r.migrations == 0 for r in energy_aware.records)

    def test_identical_with_shedding(self):
        arrivals = _sweep_arrivals(80.0, 400, seed=41)
        topo = Topology.homogeneous(6)
        plain = simulate(
            arrivals,
            FMScheduler(_interval_table(), max_backlog=10, deadline_ms=200.0),
            cores=6, topology=topo,
        )
        energy_aware = simulate(
            arrivals,
            EnergyAwareFMScheduler(
                _interval_table(), max_backlog=10, deadline_ms=200.0
            ),
            cores=6, topology=topo,
        )
        _assert_identical(plain, energy_aware)


class TestPlacement:
    def test_short_requests_live_and_die_on_little(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        # Two 10 ms requests: done long before the 50 ms rescue age.
        result = simulate(
            _arrivals([(0.0, 10.0), (5.0, 10.0)]),
            EnergyAwareFMScheduler(_interval_table()),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        for record in result.records:
            assert record.pool == 1
            assert record.migrations == 0

    def test_aged_request_is_rescued_onto_big(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        # One long request on an otherwise idle machine: crosses the
        # 50 ms age with the big pool entirely free.
        result = simulate(
            _arrivals([(0.0, 300.0)]),
            EnergyAwareFMScheduler(_interval_table(), boosting=False,
                                   min_free_cores=1.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        record = result.records[0]
        assert record.pool == 0
        assert record.migrations == 1

    def test_headroom_gate_blocks_rescue(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        # An impossible headroom demand: no age-based rescue can fire,
        # so even a long request stays on little.
        result = simulate(
            _arrivals([(0.0, 300.0)]),
            EnergyAwareFMScheduler(_interval_table(), boosting=False,
                                   min_free_cores=100.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        record = result.records[0]
        assert record.pool == 1
        assert record.migrations == 0

    def test_rescue_is_cheaper_on_latency(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        spec = _arrivals([(0.0, 300.0)])
        gated = simulate(
            spec,
            EnergyAwareFMScheduler(_interval_table(), boosting=False,
                                   min_free_cores=100.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        rescued = simulate(
            spec,
            EnergyAwareFMScheduler(_interval_table(), boosting=False,
                                   min_free_cores=1.0),
            cores=6, quantum_ms=5.0, topology=topo,
        )
        assert rescued.records[0].latency_ms < gated.records[0].latency_ms
