"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.search import SearchConfig, build_interval_table
from repro.experiments.runner import run_policy
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.profiler import profile_queries
from repro.workloads.workload import Workload


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import repro.cluster
        import repro.core
        import repro.experiments
        import repro.schedulers
        import repro.search
        import repro.sim
        import repro.workloads


class TestOfflineOnlinePipeline:
    """Profile -> interval table -> simulation, the paper's full loop."""

    def test_fm_beats_seq_tail_under_load(self, tiny_workload):
        table = build_interval_table(
            tiny_workload.profile,
            SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=25.0),
        )
        kwargs = dict(workload=tiny_workload, rps=55.0, cores=4,
                      num_requests=400, seed=9, spin_fraction=0.25)
        fm = run_policy(FMScheduler(table), **kwargs)
        seq = run_policy(SequentialScheduler(), **kwargs)
        fix = run_policy(FixedScheduler(4), **kwargs)
        assert fm.tail_latency_ms() < seq.tail_latency_ms()
        # FM is competitive with (here: not much worse than) FIX-4 while
        # using fewer threads.
        assert fm.average_threads() < fix.average_threads()

    def test_table_roundtrips_through_disk(self, tiny_workload, tmp_path):
        from repro.core.table import IntervalTable

        table = build_interval_table(
            tiny_workload.profile,
            SearchConfig(max_degree=3, target_parallelism=5.0, step_ms=50.0),
        )
        path = tmp_path / "table.json"
        table.save(path)
        loaded = IntervalTable.load(path)
        result = run_policy(
            FMScheduler(loaded), tiny_workload, rps=40.0, cores=4,
            num_requests=100, seed=3,
        )
        assert len(result) == 100


class TestSearchEngineToSimulation:
    """The Lucene-substrate loop: corpus -> index -> query profile ->
    FM table -> simulated serving."""

    def test_full_stack(self):
        docs = generate_corpus(300, vocab_size=600, mean_doc_len=50, seed=21)
        engine = SearchEngine(InvertedIndex.build(docs, num_segments=6))
        queries = generate_query_log(150, vocab_size=600, seed=22)
        profile = profile_queries(engine, queries, max_degree=4, unit_ms=0.05)

        table = build_interval_table(
            profile,
            SearchConfig(max_degree=4, target_parallelism=6.0, step_ms=10.0,
                         num_bins=20),
        )

        def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
            return rng.choice(profile.seq, size=n, replace=True)

        from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel

        avg_curve = TabulatedSpeedup(
            [profile.average_speedup(d) for d in range(1, 5)]
        )
        workload = Workload(
            name="mini-search",
            sampler=sampler,
            speedup_model=UniformSpeedupModel(avg_curve),
            max_degree=4,
            profile_size=100,
        )
        result = run_policy(
            FMScheduler(table), workload, rps=100.0, cores=4,
            num_requests=200, seed=23,
        )
        assert len(result) == 200
        assert result.tail_latency_ms() > 0


class TestCrossValidation:
    """The simulator and the Figure 6 analytics agree on an
    uncontended FM run."""

    def test_isolated_fm_requests_match_formulas(self, small_table, small_profile):
        from repro.core.formulas import completion_time
        from repro.sim.engine import ArrivalSpec, simulate

        # One request at a time, far apart: row 1 always applies.
        row = small_table.lookup(1)
        intervals = row.to_intervals(3)
        specs = [
            ArrivalSpec(i * 10_000.0, float(small_profile.seq[i]),
                        small_profile.request(i).speedup)
            for i in range(0, len(small_profile), 7)
        ]
        result = simulate(specs, FMScheduler(small_table), cores=16, quantum_ms=1.0)
        for record in result.records:
            idx = int(np.where(small_profile.seq == record.seq_ms)[0][0])
            predicted = completion_time(small_profile.request(idx), intervals)
            # quantum granularity: at most one quantum late per step
            assert record.latency_ms == pytest.approx(predicted, abs=3.0)
