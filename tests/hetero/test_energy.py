"""PoolEnergy / EnergyReport arithmetic."""

from __future__ import annotations

import math

import pytest

from repro.hetero import EnergyReport, PoolEnergy


def _report() -> EnergyReport:
    return EnergyReport(
        [
            PoolEnergy("big", 4, 2.0, active_j=10.0, spin_j=2.0, idle_j=1.0),
            PoolEnergy("little", 12, 1.0, active_j=5.0, spin_j=1.0, idle_j=3.0),
        ],
        duration_ms=2_000.0,
    )


class TestPoolEnergy:
    def test_total(self):
        pool = PoolEnergy("p", 2, 1.0, active_j=1.5, spin_j=0.5, idle_j=0.25)
        assert pool.total_j == 2.25

    def test_scaled(self):
        pool = PoolEnergy("p", 2, 1.0, active_j=4.0, spin_j=2.0, idle_j=1.0)
        half = pool.scaled(0.5)
        assert (half.active_j, half.spin_j, half.idle_j) == (2.0, 1.0, 0.5)
        assert half.name == "p" and half.cores == 2


class TestEnergyReport:
    def test_sums(self):
        report = _report()
        assert report.active_j == 15.0
        assert report.spin_j == 3.0
        assert report.idle_j == 4.0
        assert report.total_j == 22.0

    def test_pool_lookup(self):
        report = _report()
        assert report.pool("big").active_j == 10.0
        with pytest.raises(KeyError):
            report.pool("medium")

    def test_joules_per_query(self):
        report = _report()
        assert report.joules_per_query(11) == 2.0
        assert math.isnan(report.joules_per_query(0))
        assert math.isnan(report.joules_per_query(-3))

    def test_average_power(self):
        report = _report()
        assert report.average_power_w() == 22.0 / 2.0  # 2 s run
        empty = EnergyReport([], duration_ms=0.0)
        assert math.isnan(empty.average_power_w())

    def test_scaled(self):
        half = _report().scaled(0.5)
        assert half.total_j == 11.0
        assert half.duration_ms == 1_000.0
        assert half.pool("little").idle_j == 1.5

    def test_as_dict_round_trip(self):
        data = _report().as_dict()
        assert data["total_j"] == 22.0
        assert data["pools"]["big"]["speed"] == 2.0
        assert data["pools"]["little"]["total_j"] == 9.0
