"""Property-based invariants of the heterogeneous engine.

Whatever the trace and topology:

* **speed monotonicity** — running the same trace on a strictly faster
  homogeneous pool never makes any request slower (work-conserving
  processor sharing with degree decisions that don't depend on speed);
* **energy additivity** — the per-request energy attribution and the
  three-way (active/spin/idle) pool decomposition both re-add to the
  accumulator totals within 1e-6 J.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.speedup import TabulatedSpeedup
from repro.hetero import CorePool, Topology
from repro.schedulers import FixedScheduler, SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate

_CURVE = TabulatedSpeedup([1.0, 1.6, 2.1, 2.5])

#: Load-oblivious policies only: FM's table keys on *load*, so a faster
#: machine can legitimately choose different degrees and lose per-request
#: monotonicity while improving the distribution.
_policies = st.sampled_from(
    [SequentialScheduler(), FixedScheduler(2), FixedScheduler(4)]
)

_traces = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # arrival
        st.floats(min_value=1.0, max_value=300.0),  # demand
    ),
    min_size=1,
    max_size=20,
)


def _specs(trace):
    return [ArrivalSpec(t, s, _CURVE) for t, s in trace]


@given(
    trace=_traces,
    policy=_policies,
    cores=st.integers(min_value=2, max_value=6),
    slow=st.floats(min_value=0.5, max_value=2.0),
    boost=st.floats(min_value=1.05, max_value=3.0),
    spin=st.sampled_from([0.0, 0.25]),
)
@settings(max_examples=60, deadline=None)
def test_no_request_is_slower_on_a_strictly_faster_pool(
    trace, policy, cores, slow, boost, spin
):
    specs = _specs(trace)
    slower = simulate(
        specs, policy, cores=cores, spin_fraction=spin,
        topology=Topology.homogeneous(cores, speed=slow),
    )
    faster = simulate(
        specs, policy, cores=cores, spin_fraction=spin,
        topology=Topology.homogeneous(cores, speed=slow * boost),
    )
    for was, now in zip(slower.records, faster.records):
        assert now.rid == was.rid
        assert now.finish_ms <= was.finish_ms + 1e-6
        assert now.latency_ms <= was.latency_ms + 1e-6


@st.composite
def _topologies(draw):
    num_pools = draw(st.integers(min_value=1, max_value=3))
    pools = []
    for index in range(num_pools):
        pools.append(
            CorePool(
                name=f"p{index}",
                count=draw(st.integers(min_value=1, max_value=4)),
                speed=draw(st.floats(min_value=0.5, max_value=3.0)),
                active_power_w=draw(st.floats(min_value=0.1, max_value=5.0)),
                idle_power_w=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return Topology(pools)


@given(
    trace=_traces,
    policy=_policies,
    topology=_topologies(),
    spin=st.sampled_from([0.0, 0.25, 0.5]),
)
@settings(max_examples=60, deadline=None)
def test_energy_decomposition_is_additive(trace, policy, topology, spin):
    result = simulate(
        _specs(trace), policy, cores=topology.total_cores,
        spin_fraction=spin, topology=topology,
    )
    report = result.energy
    assert report is not None

    # Per-request attribution re-adds to the occupied (active+spin)
    # energy: idle belongs to the platform, not to any request.
    per_request = sum(record.energy_j for record in result.records)
    assert abs(per_request - (report.active_j + report.spin_j)) <= 1e-6

    # The three-way split re-adds to the total, overall and per pool.
    assert abs(report.total_j - (report.active_j + report.spin_j + report.idle_j)) <= 1e-6
    for pool in report.pools:
        assert abs(pool.total_j - (pool.active_j + pool.spin_j + pool.idle_j)) <= 1e-6

    # Nothing is negative, and a non-empty run on positive power burns
    # something.
    for pool in report.pools:
        assert pool.active_j >= 0.0
        assert pool.spin_j >= -1e-12
        assert pool.idle_j >= -1e-12
