"""Topology / CorePool / DVFS construction and validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hetero import CorePool, DVFSState, Topology


class TestCorePool:
    def test_defaults(self):
        pool = CorePool("p", 4)
        assert pool.count == 4
        assert pool.effective_speed == 1.0
        assert pool.effective_active_power_w == 1.0
        assert pool.effective_idle_power_w == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": 0},
            {"count": -1},
            {"speed": 0.0},
            {"speed": -1.0},
            {"active_power_w": -0.5},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        base = {"count": 2}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            CorePool("p", **base)

    def test_dvfs_state_resolution(self):
        states = (
            DVFSState("nominal", speed=2.0, active_power_w=3.5, idle_power_w=0.6),
            DVFSState("eco", speed=1.4, active_power_w=1.8, idle_power_w=0.3),
        )
        pool = CorePool("big", 4, speed=2.0, dvfs_states=states, dvfs="eco")
        assert pool.effective_speed == 1.4
        assert pool.effective_active_power_w == 1.8
        assert pool.effective_idle_power_w == 0.3

    def test_at_dvfs_returns_retuned_pool(self):
        states = (
            DVFSState("nominal", speed=2.0, active_power_w=3.5, idle_power_w=0.6),
            DVFSState("eco", speed=1.4, active_power_w=1.8, idle_power_w=0.3),
        )
        pool = CorePool("big", 4, speed=2.0, dvfs_states=states)
        eco = pool.at_dvfs("eco")
        assert eco.effective_speed == 1.4
        assert pool.effective_speed == 2.0  # original untouched
        with pytest.raises(ConfigurationError):
            pool.at_dvfs("turbo")

    def test_unknown_dvfs_name_raises(self):
        with pytest.raises(ConfigurationError):
            CorePool("big", 4, dvfs="missing")


class TestTopology:
    def test_homogeneous(self):
        topo = Topology.homogeneous(12)
        assert topo.is_single_pool
        assert topo.total_cores == 12
        assert topo.equivalent_capacity() == 12.0
        assert len(topo) == 1
        assert topo[0].name == "pool0"

    def test_big_little(self):
        topo = Topology.big_little(big=4, little=12, big_speed=2.0)
        assert not topo.is_single_pool
        assert topo.total_cores == 16
        assert topo.equivalent_capacity() == 4 * 2.0 + 12 * 1.0
        assert topo.index_of("big") == 0
        assert topo.index_of("little") == 1
        assert topo.fastest_pool == 0
        assert topo.slowest_pool == 1

    def test_fastest_ties_break_first(self):
        topo = Topology(
            (CorePool("a", 2, speed=1.5), CorePool("b", 2, speed=1.5))
        )
        assert topo.fastest_pool == 0
        assert topo.slowest_pool == 0

    def test_duplicate_names_raise(self):
        with pytest.raises(ConfigurationError):
            Topology((CorePool("x", 2), CorePool("x", 3)))

    def test_empty_topology_raises(self):
        with pytest.raises(ConfigurationError):
            Topology(())

    def test_index_of_unknown_raises(self):
        topo = Topology.homogeneous(4)
        with pytest.raises(ConfigurationError):
            topo.index_of("big")

    def test_equality_and_hash(self):
        a = Topology.big_little(big=4, little=12)
        b = Topology.big_little(big=4, little=12)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Topology.big_little(big=2, little=14)
