"""The hetero engine's correctness bar.

Two claims, attested here:

1. **Bit-identity on the degenerate topology** — a single-pool,
   speed-1.0 topology must reproduce the legacy homogeneous engine
   *and* the frozen :mod:`repro.sim._baseline` reference bit for bit,
   across schedulers, load levels, and fault injection.  Energy
   accounting rides along without perturbing a single float.
2. **Energy model invariants** — the per-request energy attribution
   sums to the pool accumulators' active+spin, the three-way
   decomposition adds up to the total, and slicing scales the report.
"""

from __future__ import annotations

import zlib

import pytest

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.hetero import Topology
from repro.schedulers import FixedScheduler, FMScheduler
from repro.sim import Engine, simulate
from repro.sim._baseline import simulate_baseline
from repro.sim.api import Admission, Scheduler
from tests.sim.test_engine import _arrivals
from tests.sim.test_engine_equivalence import (
    _SCHEDULER_FACTORIES,
    _assert_identical,
    _interval_table,
    _sweep_arrivals,
)


def _single_pool(cores: int = 6) -> Topology:
    return Topology.homogeneous(cores)


class TestSinglePoolBitIdentity:
    """The acceptance gate: homogeneous config stays bit-identical."""

    @pytest.mark.parametrize("policy", sorted(_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("load", ["light", "saturated"])
    def test_matches_legacy_and_baseline(self, policy, load):
        rps, n = (15.0, 300) if load == "light" else (70.0, 600)
        arrivals = _sweep_arrivals(
            rps, n, seed=zlib.crc32(f"hetero/{policy}/{load}".encode())
        )
        factory = _SCHEDULER_FACTORIES[policy]
        hetero = simulate(arrivals, factory(), cores=6, topology=_single_pool())
        legacy = simulate(arrivals, factory(), cores=6)
        reference = simulate_baseline(arrivals, factory(), cores=6)
        _assert_identical(hetero, legacy)
        _assert_identical(hetero, reference)
        # Energy rides along on the hetero path only.
        assert hetero.energy is not None
        assert legacy.energy is None

    def test_matches_under_faults(self):
        arrivals = _sweep_arrivals(40.0, 400, seed=99)
        plan = FaultPlan.generate(
            seed=5,
            horizon_ms=arrivals[-1].time_ms + 5_000,
            core_fault_rate_hz=0.5,
            stall_rate_hz=1.0,
            straggler_rate=0.1,
            straggler_mu=0.7,
        )
        factory = _SCHEDULER_FACTORIES["fm"]
        hetero = simulate(
            arrivals, factory(), cores=6, fault_plan=plan,
            topology=_single_pool(),
        )
        reference = simulate_baseline(arrivals, factory(), cores=6, fault_plan=plan)
        _assert_identical(hetero, reference)

    def test_speed_one_multiplication_is_exact(self):
        # The reduction relies on x * 1.0 == x bitwise; spot-check the
        # measured latencies, not just the invariant.
        arrivals = _sweep_arrivals(30.0, 200, seed=11)
        hetero = simulate(
            arrivals, FMScheduler(_interval_table()), cores=6,
            topology=_single_pool(),
        )
        legacy = simulate(arrivals, FMScheduler(_interval_table()), cores=6)
        assert [r.finish_ms for r in hetero.records] == [
            r.finish_ms for r in legacy.records
        ]


class TestTopologyValidation:
    def test_core_count_mismatch_raises(self):
        with pytest.raises(SimulationError):
            Engine(
                cores=8,
                scheduler=FixedScheduler(2),
                topology=Topology.big_little(big=4, little=12),
            )


class TestEnergyInvariants:
    def _run(self, topology, rps=40.0, n=300, seed=17):
        arrivals = _sweep_arrivals(rps, n, seed=seed)
        return simulate(
            arrivals, FixedScheduler(2), cores=topology.total_cores,
            topology=topology,
        )

    @pytest.mark.parametrize(
        "topology",
        [
            Topology.homogeneous(6),
            Topology.big_little(big=2, little=4),
        ],
        ids=["homogeneous", "big_little"],
    )
    def test_request_energy_sums_to_active_plus_spin(self, topology):
        result = self._run(topology)
        per_request = sum(record.energy_j for record in result.records)
        assert per_request == pytest.approx(
            result.energy.active_j + result.energy.spin_j, abs=1e-6
        )

    def test_three_way_decomposition_is_additive(self):
        result = self._run(Topology.big_little(big=2, little=4))
        report = result.energy
        assert report.total_j == pytest.approx(
            report.active_j + report.spin_j + report.idle_j, rel=1e-12
        )
        for pool in report.pools:
            assert pool.total_j == pool.active_j + pool.spin_j + pool.idle_j

    def test_joules_per_query_matches_report(self):
        result = self._run(Topology.big_little(big=2, little=4))
        assert result.joules_per_query() == pytest.approx(
            result.energy.total_j / len(result.records)
        )

    def test_legacy_run_reports_nan(self):
        arrivals = _sweep_arrivals(40.0, 50, seed=3)
        result = simulate(arrivals, FixedScheduler(2), cores=6)
        assert result.energy is None
        assert result.joules_per_query() != result.joules_per_query()  # NaN

    def test_slicing_scales_the_report(self):
        result = self._run(Topology.big_little(big=2, little=4), n=200)
        half = result.slice_by_arrival(0, 100)
        fraction = 100 / 200
        assert half.energy is not None
        assert half.energy.total_j == pytest.approx(
            result.energy.total_j * fraction
        )

    def test_idle_machine_burns_idle_power(self):
        # Two tiny requests a second apart: the machine idles through
        # the gap, so idle energy must dominate the bill.
        topo = Topology.big_little(big=2, little=4)
        result = simulate(
            _arrivals([(0.0, 1.0), (1_000.0, 1.0)]),
            FixedScheduler(1), cores=6, topology=topo,
        )
        report = result.energy
        assert report.idle_j > report.active_j + report.spin_j


class TestDefaultPlacement:
    def test_single_request_lands_on_fastest_pool(self):
        topo = Topology.big_little(big=2, little=4)
        result = simulate(
            _arrivals([(0.0, 50.0)]), FixedScheduler(2), cores=6, topology=topo
        )
        assert result.records[0].pool == 0  # big

    def test_overflow_spills_to_little(self):
        topo = Topology.big_little(big=2, little=4)
        # Six simultaneous degree-2 requests cannot all fit the 2-core
        # big pool; some must start on little.
        result = simulate(
            _arrivals([(0.0, 50.0)] * 6), FixedScheduler(2), cores=6,
            topology=topo,
        )
        pools = {record.pool for record in result.records}
        assert pools == {0, 1}


class _MigrateOnceScheduler(Scheduler):
    """Starts everything on pool 1, migrates to pool 0 on first quantum."""

    name = "migrate-probe"
    uses_quantum = True

    def on_arrival(self, ctx, request):
        return Admission.start(1, pool=ctx.slowest_pool)

    def on_quantum(self, ctx, request):
        if request.pool != ctx.fastest_pool:
            assert ctx.migrate(request, ctx.fastest_pool)
        return request.degree

    def on_wait_check(self, ctx, request):
        return Admission.start(1, pool=ctx.slowest_pool)


class TestMigration:
    def test_migration_moves_and_counts(self):
        topo = Topology.big_little(big=2, little=4)
        result = simulate(
            _arrivals([(0.0, 60.0), (1.0, 60.0)]),
            _MigrateOnceScheduler(),
            cores=6,
            quantum_ms=5.0,
            topology=topo,
        )
        for record in result.records:
            assert record.pool == 0  # finished on big
            assert record.migrations == 1

    def test_migration_to_faster_pool_speeds_completion(self):
        topo = Topology.big_little(big=2, little=4, big_speed=2.0)
        stay = simulate(
            _arrivals([(0.0, 100.0)]), FixedScheduler(1), cores=6,
            quantum_ms=5.0, topology=Topology.homogeneous(6),
        )
        move = simulate(
            _arrivals([(0.0, 100.0)]), _MigrateOnceScheduler(), cores=6,
            quantum_ms=5.0, topology=topo,
        )
        assert move.records[0].latency_ms < stay.records[0].latency_ms


class TestPerPoolFaults:
    def test_core_loss_and_restore_rebalance_pools(self):
        topo = Topology.big_little(big=2, little=4)
        arrivals = _sweep_arrivals(30.0, 200, seed=23)
        plan = FaultPlan.generate(
            seed=7,
            horizon_ms=arrivals[-1].time_ms + 5_000,
            core_fault_rate_hz=1.0,
        )
        engine = Engine(
            cores=6, scheduler=FixedScheduler(2), fault_plan=plan,
            topology=topo,
        )
        result = engine.run(arrivals)
        assert len(result.records) == 200
        # Every lost core must have been restored by the drained plan.
        assert sum(engine._pool_online) == 6
        assert result.fault_stats.as_dict()["core_faults_applied"] > 0
