"""Tests for query execution, cost accounting, and profile derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.profiler import lpt_makespan, parallel_time_units, profile_queries
from repro.search.query import parse_query


@pytest.fixture(scope="module")
def engine() -> SearchEngine:
    docs = generate_corpus(400, vocab_size=800, mean_doc_len=60, seed=9)
    return SearchEngine(InvertedIndex.build(docs, num_segments=8))


class TestExecutor:
    def test_results_are_ranked(self, engine):
        execution = engine.execute(parse_query("t1 t2", top_k=10))
        scores = [hit.score for hit in execution.hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_respected(self, engine):
        execution = engine.execute(parse_query("t1", top_k=3))
        assert len(execution.hits) <= 3

    def test_one_task_per_segment(self, engine):
        execution = engine.execute(parse_query("t1"))
        assert len(execution.tasks) == engine.index.num_segments

    def test_merged_results_match_global_best(self, engine):
        """The segment-parallel merge returns the same top hit as a
        hypothetical single-segment engine."""
        docs = generate_corpus(200, vocab_size=300, mean_doc_len=40, seed=10)
        sharded = SearchEngine(InvertedIndex.build(docs, num_segments=6))
        single = SearchEngine(InvertedIndex.build(docs, num_segments=1))
        query = parse_query("t1 t3 t9")
        a = sharded.execute(query)
        b = single.execute(query)
        assert a.hits[0].doc_id == b.hits[0].doc_id
        assert a.hits[0].score == pytest.approx(b.hits[0].score)

    def test_cost_scales_with_postings(self, engine):
        popular = engine.execute(parse_query("t1"))
        rare = engine.execute(parse_query("t700"))
        assert popular.total_cost_units > rare.total_cost_units

    def test_execution_deterministic(self, engine):
        q = parse_query("t2 t5")
        a = engine.execute(q)
        b = engine.execute(q)
        assert a.total_cost_units == b.total_cost_units
        assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]


class TestDeadlineDegradation:
    """Deadline-hit queries answer partially — never hang, never drop."""

    def test_no_deadline_is_full_coverage(self, engine):
        execution = engine.execute(parse_query("t1 t2"))
        assert execution.coverage == 1.0
        assert not execution.deadline_hit
        assert not execution.is_partial
        assert execution.skipped_segments == ()

    def test_tight_deadline_returns_partial_results(self, engine):
        query = parse_query("t1 t2", top_k=10)
        full = engine.execute(query)
        tight = engine.execute(query, deadline_units=full.total_cost_units / 10)
        assert tight.deadline_hit
        assert tight.is_partial
        assert 0.0 < tight.coverage < 1.0
        # The partial answer is real: hits from the completed segments.
        assert tight.hits
        completed = {t.segment_id for t in tight.tasks}
        assert completed.isdisjoint(tight.skipped_segments)
        assert len(completed) + len(tight.skipped_segments) == (
            engine.index.num_segments
        )
        assert tight.coverage == pytest.approx(
            len(completed) / engine.index.num_segments
        )

    def test_first_segment_always_runs(self, engine):
        """Even an absurdly small budget yields an answer, not nothing."""
        execution = engine.execute(parse_query("t1"), deadline_units=1e-9)
        assert len(execution.tasks) == 1
        assert execution.coverage == pytest.approx(1 / engine.index.num_segments)
        assert execution.deadline_hit

    def test_partial_hits_are_subset_quality(self, engine):
        """Partial top-k scores can only be <= the full top-k scores."""
        query = parse_query("t1 t3", top_k=5)
        full = engine.execute(query)
        tight = engine.execute(query, deadline_units=full.total_cost_units / 4)
        for partial_hit, full_hit in zip(tight.hits, full.hits):
            assert partial_hit.score <= full_hit.score + 1e-12

    def test_generous_deadline_changes_nothing(self, engine):
        query = parse_query("t2 t4", top_k=8)
        full = engine.execute(query)
        relaxed = engine.execute(query, deadline_units=full.total_cost_units * 10)
        assert not relaxed.deadline_hit
        assert relaxed.coverage == 1.0
        assert [h.doc_id for h in relaxed.hits] == [h.doc_id for h in full.hits]

    def test_validation(self, engine):
        with pytest.raises(ConfigurationError):
            engine.execute(parse_query("t1"), deadline_units=0.0)


class TestLptMakespan:
    def test_single_worker_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_many_workers_is_max(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 10) == pytest.approx(3.0)

    def test_balanced_split(self):
        assert lpt_makespan([2.0, 2.0, 2.0, 2.0], 2) == pytest.approx(4.0)

    def test_never_below_lower_bounds(self):
        costs = [5.0, 4.0, 3.0, 2.0, 1.0]
        for workers in range(1, 6):
            makespan = lpt_makespan(costs, workers)
            assert makespan >= max(costs) - 1e-9
            assert makespan >= sum(costs) / workers - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lpt_makespan([1.0], 0)


class TestParallelTime:
    def test_overhead_grows_with_workers(self):
        costs = [10.0] * 8
        t2 = parallel_time_units(costs, 2, 0.0, overhead_units_per_worker=5.0)
        t2_free = parallel_time_units(costs, 2, 0.0, overhead_units_per_worker=0.0)
        assert t2 == pytest.approx(t2_free + 5.0)


class TestProfiler:
    def test_profile_shape_and_validity(self, engine):
        queries = generate_query_log(60, vocab_size=800, seed=11)
        profile = profile_queries(engine, queries, max_degree=4)
        assert len(profile) == 60
        assert profile.max_degree == 4
        assert np.all(profile.speedups[:, 0] == 1.0)
        assert np.all(np.diff(profile.speedups, axis=1) >= -1e-9)

    def test_speedups_are_sublinear(self, engine):
        queries = generate_query_log(40, vocab_size=800, seed=12)
        profile = profile_queries(engine, queries, max_degree=4)
        degrees = np.arange(1, 5)
        assert np.all(profile.speedups <= degrees[None, :] + 1e-9)

    def test_demand_is_heavy_tailed(self, engine):
        """Zipfian terms and skewed query lengths make a few queries
        much longer than the median."""
        queries = generate_query_log(300, vocab_size=800, seed=13)
        profile = profile_queries(engine, queries, max_degree=3)
        assert profile.percentile(0.99) > 2.5 * profile.median()

    def test_long_queries_scale_better(self, engine):
        queries = generate_query_log(200, vocab_size=800, seed=14)
        profile = profile_queries(engine, queries, max_degree=4)
        assert profile.class_speedup(4, 0.9, 1.0) > profile.class_speedup(4, 0.0, 0.1)

    def test_unit_ms_scales_demand_linearly(self, engine):
        queries = generate_query_log(20, vocab_size=800, seed=15)
        a = profile_queries(engine, queries, unit_ms=0.01)
        b = profile_queries(engine, queries, unit_ms=0.02)
        assert np.allclose(b.seq, 2.0 * a.seq)

    def test_validation(self, engine):
        with pytest.raises(ConfigurationError):
            profile_queries(engine, [], max_degree=3)
        with pytest.raises(ConfigurationError):
            profile_queries(engine, ["t1"], unit_ms=0.0)
