"""Tests for the miniature search engine: tokenizer, corpus, index,
query parsing, and scoring."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.search.corpus import Document, generate_corpus, generate_query_log, zipf_weights
from repro.search.index import InvertedIndex, Segment
from repro.search.query import Query, parse_query
from repro.search.scoring import bm25_score, idf
from repro.search.tokenizer import STOPWORDS, tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_drops_stopwords(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_alphanumeric_only(self):
        assert tokenize("c++ is great; t42!") == ["c", "great", "t42"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("the and of") == []

    def test_stopwords_are_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)


class TestCorpus:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_generate_corpus_shapes(self):
        docs = generate_corpus(50, vocab_size=200, mean_doc_len=30, seed=1)
        assert len(docs) == 50
        assert all(isinstance(d, Document) and len(d) >= 1 for d in docs)

    def test_corpus_deterministic(self):
        a = generate_corpus(10, seed=3)
        b = generate_corpus(10, seed=3)
        assert a == b

    def test_popular_terms_dominate(self):
        docs = generate_corpus(200, vocab_size=500, seed=2)
        counts: dict[str, int] = {}
        for doc in docs:
            for token in doc.tokens:
                counts[token] = counts.get(token, 0) + 1
        assert counts.get("t1", 0) > counts.get("t400", 0)

    def test_query_log(self):
        queries = generate_query_log(100, vocab_size=500, max_terms=3, seed=4)
        assert len(queries) == 100
        assert all(1 <= len(q.split()) <= 3 for q in queries)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_corpus(0)
        with pytest.raises(ConfigurationError):
            generate_query_log(0)
        with pytest.raises(ConfigurationError):
            zipf_weights(0)


class TestIndex:
    def _index(self) -> InvertedIndex:
        docs = [
            Document(0, ("apple", "banana", "apple")),
            Document(1, ("banana", "cherry")),
            Document(2, ("apple",)),
            Document(3, ("durian", "durian")),
        ]
        return InvertedIndex.build(docs, num_segments=2)

    def test_round_robin_distribution(self):
        index = self._index()
        assert index.num_segments == 2
        assert index.segments[0].num_docs == 2  # docs 0, 2
        assert index.segments[1].num_docs == 2  # docs 1, 3

    def test_postings_term_frequency(self):
        index = self._index()
        postings = index.segments[0].postings("apple")
        by_doc = {p.doc_id: p.term_freq for p in postings}
        assert by_doc == {0: 2, 2: 1}

    def test_absent_term(self):
        index = self._index()
        assert index.segments[0].postings("zebra") == ()
        assert index.document_frequency("zebra") == 0

    def test_corpus_stats(self):
        index = self._index()
        assert index.num_docs == 4
        assert index.average_doc_length == pytest.approx(8 / 4)
        assert index.document_frequency("apple") == 2
        assert index.document_frequency("banana") == 2

    def test_duplicate_doc_rejected(self):
        segment = Segment(0)
        segment.add_document(Document(1, ("a",)))
        with pytest.raises(ConfigurationError):
            segment.add_document(Document(1, ("b",)))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            InvertedIndex.build([], num_segments=2)

    def test_bad_segment_count(self):
        with pytest.raises(ConfigurationError):
            InvertedIndex(0)


class TestQuery:
    def test_parse(self):
        q = parse_query("The Quick Fox", top_k=5)
        assert q.terms == ("quick", "fox")
        assert q.top_k == 5

    def test_parse_rejects_stopword_only(self):
        with pytest.raises(ConfigurationError):
            parse_query("the and")

    def test_query_validation(self):
        with pytest.raises(ConfigurationError):
            Query(())
        with pytest.raises(ConfigurationError):
            Query(("a",), top_k=0)


class TestScoring:
    def test_idf_decreases_with_frequency(self):
        assert idf(1, 1000) > idf(100, 1000) > idf(900, 1000)

    def test_idf_positive_even_for_ubiquitous_terms(self):
        assert idf(1000, 1000) > 0

    def test_bm25_increases_with_tf(self):
        a = bm25_score(1, 10, 1000, 100, 100.0)
        b = bm25_score(5, 10, 1000, 100, 100.0)
        assert b > a

    def test_bm25_tf_saturates(self):
        gains = [
            bm25_score(tf + 1, 10, 1000, 100, 100.0)
            - bm25_score(tf, 10, 1000, 100, 100.0)
            for tf in range(1, 6)
        ]
        assert all(b < a for a, b in zip(gains, gains[1:]))

    def test_bm25_length_normalization(self):
        short_doc = bm25_score(2, 10, 1000, 50, 100.0)
        long_doc = bm25_score(2, 10, 1000, 500, 100.0)
        assert short_doc > long_doc

    def test_validation(self):
        with pytest.raises(ValueError):
            idf(5, 0)
        with pytest.raises(ValueError):
            idf(-1, 10)
        with pytest.raises(ValueError):
            bm25_score(-1, 1, 10, 10, 10.0)
        with pytest.raises(ValueError):
            bm25_score(1, 1, 10, 10, 0.0)

    def test_idf_known_value(self):
        assert idf(9, 19) == pytest.approx(math.log(1.0 + 10.5 / 9.5))
