"""Tests for the interval table container."""

from __future__ import annotations

import pytest

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.table import IntervalTable, TableMetadata
from repro.errors import ConfigurationError


def _rows() -> list[Schedule]:
    return [
        Schedule([ScheduleStep(0.0, 4)]),
        Schedule([ScheduleStep(0.0, 4)]),
        Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 4)]),
        Schedule([ScheduleStep(0.0, 1), ScheduleStep(100.0, 4)]),
        Schedule([ScheduleStep(0.0, 1), ScheduleStep(100.0, 4)], wait_for_exit=True),
    ]


class TestLookup:
    def test_lookup_by_load(self):
        table = IntervalTable(_rows())
        assert table.lookup(1).initial_degree == 4
        assert table.lookup(3).steps[1].time_ms == 50.0

    def test_lookup_clamps_above_max(self):
        table = IntervalTable(_rows())
        assert table.lookup(100) == table.lookup(5)
        assert table.lookup(100).wait_for_exit

    def test_lookup_rejects_nonpositive(self):
        table = IntervalTable(_rows())
        with pytest.raises(ValueError):
            table.lookup(0)

    def test_requires_rows(self):
        with pytest.raises(ConfigurationError):
            IntervalTable([])

    def test_admission_capacity(self):
        table = IntervalTable(_rows())
        assert table.admission_capacity() == 5

    def test_admission_capacity_none_without_e1(self):
        table = IntervalTable(_rows()[:3])
        assert table.admission_capacity() is None

    def test_iteration_and_len(self):
        table = IntervalTable(_rows())
        assert len(table) == 5
        assert len(list(table)) == 5
        assert table.rows()[0][0] == 1


class TestSerialization:
    def test_dict_roundtrip(self):
        meta = TableMetadata(
            target_parallelism=24.0, max_degree=4, step_ms=5.0, extra={"y": 1100}
        )
        table = IntervalTable(_rows(), metadata=meta)
        back = IntervalTable.from_dict(table.to_dict())
        assert back.rows() == table.rows()
        assert back.metadata.target_parallelism == 24.0
        assert back.metadata.extra["y"] == 1100

    def test_file_roundtrip(self, tmp_path):
        table = IntervalTable(_rows())
        path = tmp_path / "table.json"
        table.save(path)
        back = IntervalTable.load(path)
        assert back.rows() == table.rows()

    def test_roundtrip_without_metadata(self):
        table = IntervalTable(_rows())
        assert IntervalTable.from_dict(table.to_dict()).metadata is None


class TestFormat:
    def test_collapses_equal_rows(self):
        text = IntervalTable(_rows()).format()
        assert "1-2" in text
        assert "e1, d1" in text

    def test_last_group_shows_open_range(self):
        rows = _rows() + [_rows()[-1]]
        text = IntervalTable(rows).format()
        assert ">=5" in text

    def test_no_collapse_mode(self):
        text = IntervalTable(_rows()).format(collapse=False)
        assert "1-2" not in text
        assert text.count("\n") == 5  # header + 5 rows
