"""Queueing-theory formulas, and the simulator validated against them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queueing import (
    mg1_ps_conditional_sojourn,
    mg1_ps_mean_sojourn,
    mg1_ps_slowdown,
    utilization,
)
from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.schedulers import SequentialScheduler
from repro.sim.engine import ArrivalSpec, simulate

_SEQ_CURVE = TabulatedSpeedup([1.0])


class TestFormulas:
    def test_utilization(self):
        assert utilization(0.05, 10.0, 1) == pytest.approx(0.5)
        assert utilization(0.05, 10.0, 2) == pytest.approx(0.25)

    def test_mean_sojourn(self):
        assert mg1_ps_mean_sojourn(10.0, 0.5) == pytest.approx(20.0)
        assert mg1_ps_mean_sojourn(10.0, 0.0) == pytest.approx(10.0)

    def test_conditional_linear_in_demand(self):
        assert mg1_ps_conditional_sojourn(30.0, 0.5) == pytest.approx(60.0)
        assert mg1_ps_conditional_sojourn(60.0, 0.5) == pytest.approx(
            2 * mg1_ps_conditional_sojourn(30.0, 0.5)
        )

    def test_slowdown(self):
        assert mg1_ps_slowdown(0.75) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mg1_ps_mean_sojourn(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            mg1_ps_mean_sojourn(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            utilization(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            mg1_ps_slowdown(-0.1)


class TestSimulatorAgainstTheory:
    """SEQ on one core with full spin is exactly M/G/1-PS."""

    def _run(self, rho: float, mean_service: float, n: int, seed: int,
             sigma: float = 0.0):
        rng = np.random.default_rng(seed)
        rate = rho / mean_service  # arrivals per ms
        gaps = rng.exponential(1.0 / rate, size=n)
        times = np.cumsum(gaps)
        if sigma > 0:
            median = mean_service / np.exp(sigma**2 / 2)
            services = median * np.exp(sigma * rng.standard_normal(n))
        else:
            services = np.full(n, mean_service)
        specs = [
            ArrivalSpec(float(t), float(s), _SEQ_CURVE)
            for t, s in zip(times, services)
        ]
        return simulate(specs, SequentialScheduler(), cores=1, spin_fraction=1.0)

    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_mean_sojourn_deterministic_service(self, rho):
        result = self._run(rho, mean_service=10.0, n=6000, seed=1)
        predicted = mg1_ps_mean_sojourn(10.0, rho)
        assert result.mean_latency_ms() == pytest.approx(predicted, rel=0.10)

    def test_mean_sojourn_heavy_tailed_service(self):
        """PS insensitivity: the same formula holds for lognormal
        service with the same mean."""
        sigma = 1.0
        result = self._run(0.5, mean_service=10.0, n=8000, seed=2, sigma=sigma)
        predicted = mg1_ps_mean_sojourn(10.0, 0.5)
        assert result.mean_latency_ms() == pytest.approx(predicted, rel=0.12)

    def test_conditional_stretch(self):
        """Long requests are stretched by the same 1/(1-rho) factor."""
        rho = 0.5
        result = self._run(rho, mean_service=10.0, n=8000, seed=3, sigma=0.8)
        stretch = np.array(
            [r.latency_ms / r.seq_ms for r in result.records]
        )
        # Average stretch approaches 1/(1-rho); allow simulation noise.
        assert stretch.mean() == pytest.approx(mg1_ps_slowdown(rho), rel=0.12)

    def test_low_load_tracks_formula(self):
        result = self._run(0.05, mean_service=10.0, n=2000, seed=4)
        predicted = mg1_ps_mean_sojourn(10.0, 0.05)
        assert result.mean_latency_ms() == pytest.approx(predicted, rel=0.03)
