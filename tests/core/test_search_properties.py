"""Deeper property-based tests of the offline search.

These stress the fast path's algebraic shortcuts (closed-form v0,
chunked vectorized evaluation, tie-breaking) against the semantics the
paper defines, on randomized small inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import DemandProfile
from repro.core.formulas import (
    mean_latency,
    tail_latency,
    total_average_parallelism,
)
from repro.core.search import SearchConfig, build_interval_table, exhaustive_search


def _profile(seqs, curve) -> DemandProfile:
    seqs = np.asarray(seqs, dtype=float)
    return DemandProfile(seqs, np.tile(curve, (len(seqs), 1)))


_curves = st.sampled_from(
    [
        (1.0, 1.5),
        (1.0, 1.9),
        (1.0, 1.5, 2.0),
        (1.0, 1.8, 2.2),
    ]
)


class TestFastExhaustiveEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seqs=st.lists(
            st.floats(min_value=10.0, max_value=300.0), min_size=2, max_size=6
        ),
        curve=_curves,
        target=st.sampled_from([4.0, 8.0]),
        step=st.sampled_from([50.0, 100.0]),
    )
    def test_tables_identical(self, seqs, curve, target, step):
        profile = _profile(seqs, curve)
        config = SearchConfig(
            max_degree=len(curve),
            target_parallelism=target,
            step_ms=step,
            max_load=6,
        )
        fast = build_interval_table(profile, config)
        slow = exhaustive_search(profile, config)
        assert [s for _, s in fast.rows()] == [s for _, s in slow.rows()]


class TestRowOptimality:
    """Each chosen row is at least as good as a sample of alternatives."""

    @settings(max_examples=15, deadline=None)
    @given(
        seqs=st.lists(
            st.floats(min_value=20.0, max_value=400.0), min_size=3, max_size=10
        ),
        curve=_curves,
    )
    def test_chosen_row_dominates_random_feasible_candidates(self, seqs, curve):
        from repro.core.schedule import IntervalSchedule

        profile = _profile(seqs, curve)
        n = len(curve)
        target = 6.0
        config = SearchConfig(
            max_degree=n, target_parallelism=target, step_ms=50.0, max_load=4
        )
        table = build_interval_table(profile, config)
        rng = np.random.default_rng(3)
        y = np.ceil(profile.max() / 50.0) * 50.0
        for load, row in table.rows():
            if row.wait_for_exit:
                continue
            chosen = row.to_intervals(n)
            chosen_tail = tail_latency(profile, chosen)
            for _ in range(10):
                candidate = IntervalSchedule(
                    [float(rng.integers(0, int(y // 50) + 1) * 50) for _ in range(n)]
                )
                if total_average_parallelism(profile, candidate, load) > target + 1e-9:
                    continue
                if sum(candidate.intervals[1:]) > y + 1e-9:
                    continue  # outside the search space (sum pruning)
                if candidate.v0 >= y - 1e-9:
                    continue  # v0 == y is the e1 signal, not a schedule
                assert chosen_tail <= tail_latency(profile, candidate) + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(
        seqs=st.lists(
            st.floats(min_value=20.0, max_value=400.0), min_size=3, max_size=10
        ),
        curve=_curves,
    )
    def test_row_tails_monotone_in_load(self, seqs, curve):
        """More load never buys a better achievable tail."""
        profile = _profile(seqs, curve)
        n = len(curve)
        config = SearchConfig(
            max_degree=n, target_parallelism=6.0, step_ms=50.0, max_load=6
        )
        table = build_interval_table(profile, config)
        tails = [
            tail_latency(profile, row.to_intervals(n))
            for _, row in table.rows()
            if not row.wait_for_exit
        ]
        assert all(b >= a - 1e-9 for a, b in zip(tails, tails[1:]))

    @settings(max_examples=15, deadline=None)
    @given(
        seqs=st.lists(
            st.floats(min_value=20.0, max_value=400.0), min_size=3, max_size=10
        ),
        curve=_curves,
        loose=st.sampled_from([8.0, 12.0]),
    )
    def test_looser_target_never_hurts(self, seqs, curve, loose):
        """A larger thread budget can only improve each row's tail."""
        profile = _profile(seqs, curve)
        n = len(curve)
        tight_table = build_interval_table(
            profile,
            SearchConfig(max_degree=n, target_parallelism=4.0, step_ms=50.0,
                         max_load=4),
        )
        loose_table = build_interval_table(
            profile,
            SearchConfig(max_degree=n, target_parallelism=loose, step_ms=50.0,
                         max_load=4),
        )
        for (load, tight), (_, wide) in zip(tight_table.rows(), loose_table.rows()):
            if tight.wait_for_exit or wide.wait_for_exit:
                continue
            assert tail_latency(profile, wide.to_intervals(n)) <= (
                tail_latency(profile, tight.to_intervals(n)) + 1e-6
            )


class TestTieBreaking:
    def test_equal_tail_prefers_lower_mean(self):
        """Figure 7's secondary objective."""
        profile = _profile([50.0, 150.0], (1.0, 1.5, 2.0))
        config = SearchConfig(
            max_degree=3, target_parallelism=6.0, step_ms=50.0, max_load=3
        )
        table = build_interval_table(profile, config)
        # At q=3 the paper's (0,d1)(50,d3) and our (0,d2)(100,d3) tie at
        # 100 ms tail; the search must keep the lower-mean one.
        from repro.core.schedule import IntervalSchedule

        chosen = table.lookup(3).to_intervals(3)
        paper_row = IntervalSchedule([0.0, 50.0, 0.0])
        assert tail_latency(profile, chosen) == pytest.approx(
            tail_latency(profile, paper_row)
        )
        assert mean_latency(profile, chosen) <= mean_latency(profile, paper_row)
