"""Tests for the offline interval-selection search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import DemandProfile
from repro.core.formulas import total_average_parallelism
from repro.core.search import (
    SearchConfig,
    build_interval_table,
    enumerate_combos,
    exhaustive_search,
)
from repro.errors import ConfigurationError


def _profile(seqs, curve=(1.0, 1.5, 2.0)) -> DemandProfile:
    seqs = np.asarray(seqs, dtype=float)
    return DemandProfile(seqs, np.tile(curve, (len(seqs), 1)))


class TestEnumerateCombos:
    def test_degenerate_n1(self):
        combos = enumerate_combos(1, 100.0, 50.0)
        assert combos.shape == (1, 0)

    def test_n2_is_grid(self):
        combos = enumerate_combos(2, 100.0, 50.0)
        assert combos[:, 0].tolist() == [0.0, 50.0, 100.0]

    def test_sum_pruning(self):
        combos = enumerate_combos(3, 100.0, 50.0)
        assert np.all(combos.sum(axis=1) <= 100.0 + 1e-9)
        # (0,0), (0,50), (0,100), (50,0), (50,50), (100,0)
        assert len(combos) == 6

    def test_lexicographic_order(self):
        combos = enumerate_combos(3, 100.0, 50.0)
        as_tuples = [tuple(row) for row in combos]
        assert as_tuples == sorted(as_tuples)


class TestSearchConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(max_degree=0, target_parallelism=4)
        with pytest.raises(ConfigurationError):
            SearchConfig(max_degree=2, target_parallelism=0)
        with pytest.raises(ConfigurationError):
            SearchConfig(max_degree=2, target_parallelism=4, step_ms=0)
        with pytest.raises(ConfigurationError):
            SearchConfig(max_degree=2, target_parallelism=4, phi=1.5)
        with pytest.raises(ConfigurationError):
            SearchConfig(max_degree=2, target_parallelism=4, max_load=0)

    def test_rejects_degree_beyond_profile(self):
        profile = _profile([50.0], curve=(1.0, 1.5))
        config = SearchConfig(max_degree=3, target_parallelism=4)
        with pytest.raises(ConfigurationError):
            build_interval_table(profile, config)


class TestFig5Example:
    """Structure of the paper's worked example (Figure 5)."""

    def _table(self):
        profile = _profile([50.0, 150.0])
        config = SearchConfig(max_degree=3, target_parallelism=6.0, step_ms=50.0)
        return build_interval_table(profile, config)

    def test_low_load_runs_full_parallel(self):
        table = self._table()
        for q in (1, 2):
            row = table.lookup(q)
            assert row.initial_degree == 3
            assert row.admission_delay_ms == 0.0

    def test_admission_capacity_at_target_plus_one(self):
        """Paper: q >= 7 is the e1 row for target_p = 6."""
        table = self._table()
        assert table.admission_capacity() == 7
        assert table.lookup(100).wait_for_exit

    def test_every_row_meets_the_parallelism_target(self):
        profile = _profile([50.0, 150.0])
        table = self._table()
        for load, schedule in table.rows():
            if schedule.wait_for_exit:
                continue
            intervals = schedule.to_intervals(3)
            ap = total_average_parallelism(profile, intervals, load)
            assert ap <= 6.0 + 1e-6

    def test_admission_delays_monotone_in_load(self):
        table = self._table()
        delays = [
            row.admission_delay_ms
            for _, row in table.rows()
            if not row.wait_for_exit
        ]
        assert all(b >= a for a, b in zip(delays, delays[1:]))


class TestFastMatchesExhaustive:
    @settings(max_examples=15, deadline=None)
    @given(
        seqs=st.lists(
            st.floats(min_value=10.0, max_value=200.0), min_size=1, max_size=5
        ),
        target=st.sampled_from([3.0, 6.0, 10.0]),
    )
    def test_equivalence_n2(self, seqs, target):
        profile = _profile(seqs, curve=(1.0, 1.6))
        config = SearchConfig(
            max_degree=2, target_parallelism=target, step_ms=50.0, max_load=8
        )
        fast = build_interval_table(profile, config)
        slow = exhaustive_search(profile, config)
        assert len(fast) == len(slow)
        for (l1, s1), (l2, s2) in zip(fast.rows(), slow.rows()):
            assert l1 == l2
            assert s1 == s2, f"load {l1}: {s1.describe()} != {s2.describe()}"

    def test_equivalence_n3_fixed_case(self):
        profile = _profile([50.0, 150.0, 400.0])
        config = SearchConfig(
            max_degree=3, target_parallelism=5.0, step_ms=100.0, max_load=8
        )
        fast = build_interval_table(profile, config)
        slow = exhaustive_search(profile, config)
        for (_, s1), (_, s2) in zip(fast.rows(), slow.rows()):
            assert s1 == s2


class TestTableProperties:
    def test_binned_close_to_exact(self):
        rng = np.random.default_rng(11)
        profile = _profile(rng.lognormal(4.0, 0.8, size=300))
        config_exact = SearchConfig(
            max_degree=3, target_parallelism=8.0, step_ms=50.0, max_load=10
        )
        config_binned = SearchConfig(
            max_degree=3,
            target_parallelism=8.0,
            step_ms=50.0,
            max_load=10,
            num_bins=30,
        )
        exact = build_interval_table(profile, config_exact)
        binned = build_interval_table(profile, config_binned)
        # Same structure; row-level interval values may differ slightly.
        assert len(exact) == len(binned)
        for (_, a), (_, b) in zip(exact.rows(), binned.rows()):
            assert a.wait_for_exit == b.wait_for_exit
            assert abs(a.admission_delay_ms - b.admission_delay_ms) <= 100.0

    def test_rows_satisfy_target(self, small_profile):
        config = SearchConfig(
            max_degree=4, target_parallelism=10.0, step_ms=50.0, max_load=12
        )
        table = build_interval_table(small_profile, config)
        for load, schedule in table.rows():
            if schedule.wait_for_exit:
                continue
            intervals = schedule.to_intervals(4)
            ap = total_average_parallelism(small_profile, intervals, load)
            assert ap <= 10.0 + 1e-6

    def test_ends_with_e1_row(self, small_profile):
        config = SearchConfig(
            max_degree=2, target_parallelism=4.0, step_ms=100.0
        )
        table = build_interval_table(small_profile, config)
        assert table.lookup(table.max_load).wait_for_exit

    def test_metadata_recorded(self, small_profile):
        config = SearchConfig(max_degree=2, target_parallelism=4.0, step_ms=100.0)
        table = build_interval_table(small_profile, config)
        assert table.metadata is not None
        assert table.metadata.target_parallelism == 4.0
        assert table.metadata.max_degree == 2

    def test_single_degree_search(self, small_profile):
        """n = 1 degenerates to pure admission control."""
        config = SearchConfig(
            max_degree=1, target_parallelism=3.0, step_ms=50.0, max_load=6
        )
        table = build_interval_table(small_profile, config)
        for _, schedule in table.rows():
            assert schedule.max_degree == 1

    def test_low_load_has_zero_delay(self, small_profile):
        config = SearchConfig(
            max_degree=3, target_parallelism=9.0, step_ms=50.0, max_load=9
        )
        table = build_interval_table(small_profile, config)
        assert table.lookup(1).admission_delay_ms == 0.0
        # And at load 1 the request should get full parallelism.
        assert table.lookup(1).initial_degree == 3

    def test_higher_load_means_weakly_less_parallelism(self, small_profile):
        """The mean latency under each row's schedule is non-decreasing
        in load: more load, more conservative schedules."""
        from repro.core.formulas import mean_latency

        config = SearchConfig(
            max_degree=3, target_parallelism=9.0, step_ms=25.0, max_load=9
        )
        table = build_interval_table(small_profile, config)
        means = []
        for _, schedule in table.rows():
            if schedule.wait_for_exit:
                continue
            means.append(mean_latency(small_profile, schedule.to_intervals(3)))
        assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))
