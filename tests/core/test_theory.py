"""Tests for the Theorem 1 machinery (appendix)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import DemandProfile
from repro.core.speedup import LinearSpeedup, TabulatedSpeedup
from repro.core.theory import WorkSchedule, WorkSegment, survival_integral
from repro.errors import InvalidScheduleError

_SUBLINEAR = TabulatedSpeedup([1.0, 1.8, 2.4, 2.8])


def _profile(seqs) -> DemandProfile:
    seqs = np.asarray(seqs, dtype=float)
    return DemandProfile(seqs, np.tile([1.0, 1.8, 2.4, 2.8], (len(seqs), 1)))


class TestSurvivalIntegral:
    def test_full_range_is_mean(self):
        p = _profile([10.0, 30.0])
        assert survival_integral(p, 0.0, 100.0) == pytest.approx(20.0)

    def test_below_min_demand_is_full_measure(self):
        p = _profile([10.0, 30.0])
        # 1 - F(x) = 1 on [0, 10)
        assert survival_integral(p, 0.0, 10.0) == pytest.approx(10.0)

    def test_partial_overlap(self):
        p = _profile([10.0, 30.0])
        # on [10, 30): only the 30 ms request survives -> 0.5 * 20
        assert survival_integral(p, 10.0, 30.0) == pytest.approx(10.0)

    def test_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            survival_integral(_profile([10.0]), 5.0, 1.0)


class TestWorkSchedule:
    def test_validation(self):
        with pytest.raises(InvalidScheduleError):
            WorkSchedule([])
        with pytest.raises(InvalidScheduleError):
            WorkSegment(-1.0, 1)
        with pytest.raises(InvalidScheduleError):
            WorkSegment(1.0, 0)

    def test_processing_time(self):
        sched = WorkSchedule([WorkSegment(10.0, 1), WorkSegment(18.0, 2)])
        assert sched.processing_time(_SUBLINEAR) == pytest.approx(10.0 + 10.0)

    def test_is_non_decreasing(self):
        assert WorkSchedule([WorkSegment(1.0, 1), WorkSegment(1.0, 3)]).is_non_decreasing()
        assert not WorkSchedule(
            [WorkSegment(1.0, 3), WorkSegment(1.0, 1)]
        ).is_non_decreasing()

    def test_zero_work_segments_ignored_for_ordering(self):
        sched = WorkSchedule(
            [WorkSegment(1.0, 2), WorkSegment(0.0, 1), WorkSegment(1.0, 3)]
        )
        assert sched.is_non_decreasing()

    def test_swap_preserves_processing_time(self):
        sched = WorkSchedule([WorkSegment(10.0, 3), WorkSegment(30.0, 1)])
        swapped = sched.swap(0, 1)
        assert swapped.processing_time(_SUBLINEAR) == pytest.approx(
            sched.processing_time(_SUBLINEAR)
        )
        assert swapped.total_work == sched.total_work


class TestTheorem1:
    """The appendix's exchange argument, executably."""

    def test_exchange_never_helps_decreasing_order(self):
        """Fixing a decreasing pair never increases resource usage."""
        rng = np.random.default_rng(3)
        profile = _profile(np.sort(rng.lognormal(3.5, 0.9, size=60)))
        w = profile.percentile(0.99)
        decreasing = WorkSchedule(
            [WorkSegment(0.3 * w, 4), WorkSegment(0.7 * w, 1)]
        )
        fixed = decreasing.swap(0, 1)
        assert fixed.is_non_decreasing()
        assert fixed.resource_usage(profile, _SUBLINEAR) <= decreasing.resource_usage(
            profile, _SUBLINEAR
        )

    def test_sorted_is_optimal_among_permutations(self):
        rng = np.random.default_rng(4)
        profile = _profile(np.sort(rng.lognormal(3.5, 0.9, size=60)))
        w = profile.percentile(0.99)
        segments = [
            WorkSegment(0.4 * w, 1),
            WorkSegment(0.3 * w, 2),
            WorkSegment(0.2 * w, 3),
            WorkSegment(0.1 * w, 4),
        ]
        sorted_usage = WorkSchedule(segments).sorted_non_decreasing().resource_usage(
            profile, _SUBLINEAR
        )
        for perm in itertools.permutations(segments):
            usage = WorkSchedule(list(perm)).resource_usage(profile, _SUBLINEAR)
            assert sorted_usage <= usage + 1e-9

    def test_linear_speedup_makes_order_irrelevant(self):
        """With s(d) = d (efficiency constant), the theorem's strict
        inequality collapses: every ordering costs the same."""
        profile = _profile([20.0, 50.0, 90.0])
        linear = LinearSpeedup()
        a = WorkSchedule([WorkSegment(30.0, 1), WorkSegment(30.0, 3)])
        b = a.swap(0, 1)
        assert a.resource_usage(profile, linear) == pytest.approx(
            b.resource_usage(profile, linear)
        )

    @given(
        works=st.lists(
            st.floats(min_value=1.0, max_value=50.0), min_size=2, max_size=5
        ),
        degrees=st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_sorting_never_increases_usage(self, works, degrees):
        size = min(len(works), len(degrees))
        segments = [WorkSegment(w, d) for w, d in zip(works[:size], degrees[:size])]
        rng = np.random.default_rng(5)
        profile = _profile(np.sort(rng.lognormal(3.0, 1.0, size=40)))
        sched = WorkSchedule(segments)
        ordered = sched.sorted_non_decreasing()
        assert ordered.resource_usage(profile, _SUBLINEAR) <= (
            sched.resource_usage(profile, _SUBLINEAR) + 1e-9
        )
        assert ordered.processing_time(_SUBLINEAR) == pytest.approx(
            sched.processing_time(_SUBLINEAR)
        )
