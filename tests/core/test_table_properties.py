"""Property-based tests for interval-table serialization and display."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.table import IntervalTable, TableMetadata


@st.composite
def _schedules(draw) -> Schedule:
    wait = draw(st.booleans())
    n_steps = draw(st.integers(min_value=1, max_value=4))
    degrees = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=8),
                min_size=n_steps,
                max_size=n_steps,
                unique=True,
            )
        )
    )
    gaps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=500.0),
            min_size=n_steps,
            max_size=n_steps,
        )
    )
    times = []
    t = 0.0 if wait else draw(st.floats(min_value=0.0, max_value=200.0))
    for gap in gaps:
        times.append(t)
        t += gap
    steps = [ScheduleStep(time, degree) for time, degree in zip(times, degrees)]
    return Schedule(steps, wait_for_exit=wait)


@st.composite
def _tables(draw) -> IntervalTable:
    rows = draw(st.lists(_schedules(), min_size=1, max_size=8))
    meta = None
    if draw(st.booleans()):
        meta = TableMetadata(
            target_parallelism=draw(st.floats(min_value=1.0, max_value=64.0)),
            max_degree=draw(st.integers(min_value=1, max_value=8)),
            step_ms=draw(st.floats(min_value=1.0, max_value=100.0)),
        )
    return IntervalTable(rows, metadata=meta)


class TestRoundTrips:
    @given(table=_tables())
    @settings(max_examples=100)
    def test_dict_roundtrip_preserves_rows(self, table: IntervalTable):
        back = IntervalTable.from_dict(table.to_dict())
        assert back.rows() == table.rows()
        if table.metadata is not None:
            assert back.metadata.target_parallelism == table.metadata.target_parallelism

    @given(table=_tables())
    @settings(max_examples=60)
    def test_file_roundtrip(self, table: IntervalTable):
        import json

        payload = json.dumps(table.to_dict())
        back = IntervalTable.from_dict(json.loads(payload))
        assert back.rows() == table.rows()

    @given(table=_tables())
    @settings(max_examples=60)
    def test_format_has_one_line_per_group_plus_header(self, table: IntervalTable):
        text = table.format(collapse=False)
        assert len(text.splitlines()) == len(table) + 1

    @given(table=_tables())
    @settings(max_examples=60)
    def test_lookup_total_over_loads(self, table: IntervalTable):
        for load in (1, len(table), len(table) + 50):
            assert table.lookup(load) is not None

    @given(table=_tables())
    @settings(max_examples=60)
    def test_collapse_never_loses_rows(self, table: IntervalTable):
        collapsed = table.format(collapse=True).splitlines()
        expanded = table.format(collapse=False).splitlines()
        assert len(collapsed) <= len(expanded)
