"""Tests for demand profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import DemandProfile, RequestProfile
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.errors import InvalidProfileError


def _profile(seq, weights=None) -> DemandProfile:
    seq = np.asarray(seq, dtype=float)
    tables = np.tile([1.0, 1.5, 2.0], (len(seq), 1))
    return DemandProfile(seq, tables, weights)


class TestConstruction:
    def test_sorts_by_demand(self):
        p = _profile([30.0, 10.0, 20.0])
        assert list(p.seq) == [10.0, 20.0, 30.0]

    def test_sorting_keeps_rows_aligned(self):
        seq = np.array([30.0, 10.0])
        tables = np.array([[1.0, 1.9, 2.8], [1.0, 1.1, 1.2]])
        p = DemandProfile(seq, tables)
        assert p.seq[0] == 10.0
        assert p.speedups[0, 2] == pytest.approx(1.2)

    def test_rejects_empty(self):
        with pytest.raises(InvalidProfileError):
            _profile([])

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(InvalidProfileError):
            _profile([10.0, 0.0])

    def test_rejects_bad_speedup_shape(self):
        with pytest.raises(InvalidProfileError):
            DemandProfile(np.array([1.0, 2.0]), np.array([[1.0, 1.5]]))

    def test_rejects_bad_s1_column(self):
        with pytest.raises(InvalidProfileError):
            DemandProfile(np.array([1.0]), np.array([[1.1, 1.5]]))

    def test_rejects_decreasing_speedups(self):
        with pytest.raises(InvalidProfileError):
            DemandProfile(np.array([1.0]), np.array([[1.0, 2.0, 1.5]]))

    def test_rejects_bad_weights(self):
        with pytest.raises(InvalidProfileError):
            _profile([1.0, 2.0], weights=[1.0, 0.0])

    def test_arrays_are_immutable(self):
        p = _profile([10.0])
        with pytest.raises(ValueError):
            p.seq[0] = 5.0

    def test_from_requests(self):
        reqs = [
            RequestProfile(100.0, TabulatedSpeedup([1.0, 1.8])),
            RequestProfile(50.0, TabulatedSpeedup([1.0, 1.2])),
        ]
        p = DemandProfile.from_requests(reqs, max_degree=2)
        assert list(p.seq) == [50.0, 100.0]
        assert p.speedups[1, 1] == pytest.approx(1.8)

    def test_from_model(self):
        model = UniformSpeedupModel(TabulatedSpeedup([1.0, 1.5]))
        p = DemandProfile.from_model([10.0, 20.0], model, max_degree=2)
        assert p.max_degree == 2

    def test_request_accessor_roundtrip(self):
        p = _profile([10.0, 20.0])
        req = p.request(1)
        assert req.seq_ms == 20.0
        assert req.speedup.speedup(3) == pytest.approx(2.0)
        assert req.parallel_time(3) == pytest.approx(10.0)


class TestStatistics:
    def test_percentile_matches_order_statistic(self):
        p = _profile(np.arange(1.0, 101.0))
        # ceil(0.99 * 100) = 99th smallest = 99.0
        assert p.percentile(0.99) == 99.0
        assert p.percentile(1.0) == 100.0
        assert p.median() == 50.0

    def test_percentile_with_weights(self):
        p = _profile([10.0, 20.0], weights=[99.0, 1.0])
        assert p.percentile(0.5) == 10.0
        assert p.percentile(0.999) == 20.0

    def test_percentile_rejects_bad_phi(self):
        p = _profile([10.0])
        with pytest.raises(ValueError):
            p.percentile(0.0)

    def test_mean(self):
        p = _profile([10.0, 30.0], weights=[1.0, 3.0])
        assert p.mean() == pytest.approx(25.0)

    def test_histogram_total(self):
        p = _profile([5.0, 15.0, 25.0, 26.0])
        edges, counts = p.histogram(10.0)
        assert counts.sum() == 4
        assert len(edges) == len(counts) + 1
        assert counts[2] == 2

    def test_histogram_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            _profile([5.0]).histogram(0.0)

    def test_average_speedup(self):
        p = _profile([10.0, 20.0])
        assert p.average_speedup(2) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            p.average_speedup(4)

    def test_class_speedup_selects_band(self):
        seq = np.array([10.0, 20.0, 30.0, 40.0])
        tables = np.array(
            [[1.0, 1.1], [1.0, 1.2], [1.0, 1.3], [1.0, 1.4]]
        )
        p = DemandProfile(seq, tables)
        assert p.class_speedup(2, 0.75, 1.0) == pytest.approx(1.4)
        assert p.class_speedup(2, 0.0, 0.25) == pytest.approx(1.1)

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=60
        ),
        phi=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_percentile_is_an_observed_value(self, values, phi):
        p = _profile(values)
        assert p.percentile(phi) in p.seq

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=60
        )
    )
    @settings(max_examples=60)
    def test_percentile_monotone_in_phi(self, values):
        p = _profile(values)
        phis = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
        results = [p.percentile(phi) for phi in phis]
        assert all(b >= a for a, b in zip(results, results[1:]))


class TestBinning:
    def test_binned_preserves_total_weight(self):
        rng = np.random.default_rng(1)
        p = _profile(rng.lognormal(3.0, 1.0, size=200))
        b = p.binned(20)
        assert b.total_weight == pytest.approx(p.total_weight)
        assert len(b) <= 20

    def test_binned_preserves_mean_approximately(self):
        rng = np.random.default_rng(2)
        p = _profile(rng.lognormal(3.0, 1.0, size=500))
        b = p.binned(50)
        assert b.mean() == pytest.approx(p.mean(), rel=0.05)

    def test_binned_noop_when_bins_exceed_size(self):
        p = _profile([1.0, 2.0, 3.0])
        assert p.binned(10) is p

    def test_binned_rejects_bad_count(self):
        with pytest.raises(ValueError):
            _profile([1.0]).binned(0)

    def test_bins_sorted_and_valid(self):
        rng = np.random.default_rng(3)
        p = _profile(rng.lognormal(3.0, 1.0, size=100))
        b = p.binned(10)
        assert np.all(np.diff(b.seq) >= 0)
        assert np.allclose(b.speedups[:, 0], 1.0)

    def test_subsample(self):
        rng = np.random.default_rng(4)
        p = _profile(np.arange(1.0, 101.0))
        s = p.subsample(10, rng)
        assert len(s) == 10
        assert set(s.seq).issubset(set(p.seq))
