"""Tests for the σ and S schedule representations."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import IntervalSchedule, Schedule, ScheduleStep
from repro.errors import InvalidScheduleError


class TestScheduleValidation:
    def test_requires_steps(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([])

    def test_requires_increasing_times(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([ScheduleStep(50.0, 1), ScheduleStep(50.0, 2)])

    def test_requires_increasing_degrees(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([ScheduleStep(0.0, 2), ScheduleStep(50.0, 2)])

    def test_rejects_negative_time(self):
        with pytest.raises(InvalidScheduleError):
            ScheduleStep(-1.0, 1)

    def test_rejects_zero_degree(self):
        with pytest.raises(InvalidScheduleError):
            ScheduleStep(0.0, 0)


class TestScheduleSemantics:
    def test_paper_example(self):
        """σ = {(0, d1), (50, d3)} from Section 4.1."""
        sched = Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 3)])
        assert sched.initial_degree == 1
        assert sched.max_degree == 3
        assert sched.admission_delay_ms == 0.0
        assert sched.degree_at_progress(0.0) == 1
        assert sched.degree_at_progress(49.9) == 1
        assert sched.degree_at_progress(50.0) == 3
        assert sched.degree_at_progress(1e6) == 3

    def test_progress_steps_subtract_admission_delay(self):
        sched = Schedule([ScheduleStep(30.0, 1), ScheduleStep(130.0, 2)])
        assert sched.progress_steps() == [(0.0, 1), (100.0, 2)]
        assert sched.degree_at_progress(99.0) == 1
        assert sched.degree_at_progress(100.0) == 2

    def test_describe_matches_table2_style(self):
        sched = Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 3)])
        assert sched.describe() == "0, d1  50, d3"

    def test_describe_e1(self):
        sched = Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True)
        assert sched.describe() == "e1, d1"

    def test_dict_roundtrip(self):
        sched = Schedule(
            [ScheduleStep(10.0, 1), ScheduleStep(60.0, 4)], wait_for_exit=True
        )
        assert Schedule.from_dict(sched.to_dict()) == sched


class TestIntervalSchedule:
    def test_paper_equivalence_example(self):
        """S = {0, 50, 0} ⇔ σ = {(0, d1), (50, d3)} for n = 3."""
        s = IntervalSchedule([0.0, 50.0, 0.0])
        sigma = s.to_schedule()
        assert sigma == Schedule([ScheduleStep(0.0, 1), ScheduleStep(50.0, 3)])
        assert sigma.to_intervals(3) == s

    def test_all_zero_starts_at_max_degree(self):
        sigma = IntervalSchedule([0.0, 0.0, 0.0]).to_schedule()
        assert sigma == Schedule([ScheduleStep(0.0, 3)])

    def test_admission_delay(self):
        sigma = IntervalSchedule([50.0, 100.0, 0.0]).to_schedule()
        assert sigma.admission_delay_ms == 50.0
        assert sigma.steps[1].time_ms == 150.0  # arrival-relative

    def test_skipped_degree(self):
        sigma = IntervalSchedule([0.0, 0.0, 50.0]).to_schedule()
        assert [s.degree for s in sigma.steps] == [2, 3]

    def test_phase_duration(self):
        s = IntervalSchedule([0.0, 50.0, 25.0])
        assert s.phase_duration(1) == 50.0
        assert s.phase_duration(2) == 25.0
        assert s.phase_duration(3) == math.inf
        with pytest.raises(ValueError):
            s.phase_duration(4)

    def test_rejects_negative_interval(self):
        with pytest.raises(InvalidScheduleError):
            IntervalSchedule([0.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidScheduleError):
            IntervalSchedule([])

    def test_dict_roundtrip(self):
        s = IntervalSchedule([5.0, 10.0], wait_for_exit=True)
        assert IntervalSchedule.from_dict(s.to_dict()) == s

    @given(
        intervals=st.lists(
            st.sampled_from([0.0, 5.0, 25.0, 100.0]), min_size=1, max_size=6
        ),
        wait=st.booleans(),
    )
    @settings(max_examples=200)
    def test_roundtrip_s_to_sigma_to_s(self, intervals, wait):
        """S -> σ -> S is the identity (zero phases collapse and
        reconstruct positionally)."""
        s = IntervalSchedule(intervals, wait_for_exit=wait)
        back = s.to_schedule().to_intervals(s.max_degree)
        if wait:
            # e1 discards the numeric v0.
            assert back.intervals[1:] == s.intervals[1:]
        else:
            assert back == s

    @given(
        intervals=st.lists(
            st.sampled_from([0.0, 5.0, 25.0, 100.0]), min_size=1, max_size=6
        )
    )
    @settings(max_examples=200)
    def test_sigma_degree_thresholds_consistent(self, intervals):
        """degree_at_progress agrees with a direct phase walk of S."""
        s = IntervalSchedule(intervals)
        sigma = s.to_schedule()
        n = s.max_degree
        elapsed = 0.0
        for degree in range(1, n):
            duration = s.intervals[degree]
            if duration > 0:
                midpoint = elapsed + duration / 2
                assert sigma.degree_at_progress(midpoint) == degree
            elapsed += duration
        assert sigma.degree_at_progress(elapsed + 1.0) == sigma.max_degree
