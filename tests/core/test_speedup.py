"""Tests for speedup-curve models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.speedup import (
    AmdahlSpeedup,
    LengthDependentSpeedupModel,
    LinearSpeedup,
    TabulatedSpeedup,
    UniformSpeedupModel,
)
from repro.errors import InvalidSpeedupError


class TestTabulatedSpeedup:
    def test_returns_tabulated_values(self):
        curve = TabulatedSpeedup([1.0, 1.5, 2.0])
        assert curve.speedup(1) == 1.0
        assert curve.speedup(2) == 1.5
        assert curve.speedup(3) == 2.0

    def test_plateaus_beyond_table(self):
        curve = TabulatedSpeedup([1.0, 1.5, 2.0])
        assert curve.speedup(4) == 2.0
        assert curve.speedup(10) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidSpeedupError):
            TabulatedSpeedup([])

    def test_rejects_bad_s1(self):
        with pytest.raises(InvalidSpeedupError):
            TabulatedSpeedup([1.2, 1.5])

    def test_rejects_decreasing(self):
        with pytest.raises(InvalidSpeedupError):
            TabulatedSpeedup([1.0, 2.0, 1.5])

    def test_rejects_superlinear(self):
        with pytest.raises(InvalidSpeedupError):
            TabulatedSpeedup([1.0, 2.5])

    def test_rejects_degree_below_one(self):
        curve = TabulatedSpeedup([1.0, 1.5])
        with pytest.raises(ValueError):
            curve.speedup(0)

    def test_accepts_numpy_array(self):
        curve = TabulatedSpeedup(np.array([1.0, 1.9, 2.5]))
        assert curve.speedup(3) == 2.5

    def test_equality_and_hash(self):
        a = TabulatedSpeedup([1.0, 1.5])
        b = TabulatedSpeedup([1.0, 1.5])
        assert a == b
        assert hash(a) == hash(b)

    def test_table_roundtrip(self):
        curve = TabulatedSpeedup([1.0, 1.8, 2.2])
        assert list(curve.table(3)) == [1.0, 1.8, 2.2]

    def test_is_sublinear(self):
        assert TabulatedSpeedup([1.0, 1.8, 2.2]).is_sublinear(3)
        assert not LinearSpeedup().is_sublinear(3)


class TestAmdahlSpeedup:
    def test_zero_serial_fraction_is_linear(self):
        curve = AmdahlSpeedup(0.0)
        assert curve.speedup(4) == pytest.approx(4.0)

    def test_full_serial_fraction_is_flat(self):
        curve = AmdahlSpeedup(1.0)
        assert curve.speedup(4) == pytest.approx(1.0)

    def test_known_value(self):
        # f = 0.5: s(2) = 1 / (0.5 + 0.25) = 4/3
        assert AmdahlSpeedup(0.5).speedup(2) == pytest.approx(4.0 / 3.0)

    def test_overhead_creates_plateau_not_decline(self):
        curve = AmdahlSpeedup(0.1, overhead=0.2)
        values = [curve.speedup(d) for d in range(1, 9)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidSpeedupError):
            AmdahlSpeedup(-0.1)
        with pytest.raises(InvalidSpeedupError):
            AmdahlSpeedup(0.5, overhead=1.0)

    @given(
        f=st.floats(min_value=0.01, max_value=0.99),
        degree=st.integers(min_value=2, max_value=16),
    )
    def test_efficiency_decreases(self, f: float, degree: int):
        """Amdahl curves satisfy the Theorem 1 sublinearity premise."""
        curve = AmdahlSpeedup(f)
        assert curve.efficiency(degree) < curve.efficiency(degree - 1)

    @given(f=st.floats(min_value=0.0, max_value=1.0))
    def test_always_valid(self, f: float):
        AmdahlSpeedup(f).validate(max_degree=8)


class TestLengthDependentSpeedupModel:
    def _model(self) -> LengthDependentSpeedupModel:
        return LengthDependentSpeedupModel(
            short_curve=TabulatedSpeedup([1.0, 1.2, 1.3]),
            long_curve=TabulatedSpeedup([1.0, 1.9, 2.6]),
            short_ms=10.0,
            long_ms=1000.0,
            max_degree=3,
        )

    def test_extremes_match_anchor_curves(self):
        model = self._model()
        assert model.curve_for(5.0).speedup(3) == pytest.approx(1.3)
        assert model.curve_for(2000.0).speedup(3) == pytest.approx(2.6)

    def test_midpoint_interpolates(self):
        model = self._model()
        # Geometric midpoint of [10, 1000] is 100 -> weight 0.5.
        assert model.curve_for(100.0).speedup(2) == pytest.approx(1.55)

    def test_monotone_in_length(self):
        model = self._model()
        values = [model.curve_for(x).speedup(3) for x in [5, 20, 100, 400, 2000]]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_tables_for_matches_curve_for(self):
        model = self._model()
        seq = np.array([5.0, 50.0, 500.0, 5000.0])
        tables = model.tables_for(seq, 3)
        for i, s in enumerate(seq):
            expected = model.curve_for(float(s)).table(3)
            assert np.allclose(tables[i], expected)

    def test_tables_extend_beyond_anchor_width(self):
        model = self._model()
        tables = model.tables_for(np.array([100.0]), 5)
        assert tables.shape == (1, 5)
        assert tables[0, 4] == pytest.approx(tables[0, 2])  # plateau

    def test_rejects_bad_range(self):
        with pytest.raises(InvalidSpeedupError):
            LengthDependentSpeedupModel(
                TabulatedSpeedup([1.0]), TabulatedSpeedup([1.0]), 100.0, 50.0
            )

    @given(seq=st.floats(min_value=0.1, max_value=1e5))
    def test_curves_always_valid(self, seq: float):
        self._model().curve_for(seq).validate(max_degree=3)


class TestUniformSpeedupModel:
    def test_same_curve_for_all(self):
        curve = TabulatedSpeedup([1.0, 1.5])
        model = UniformSpeedupModel(curve)
        assert model.curve_for(1.0) is curve
        assert model.curve_for(1e6) is curve

    def test_tables_for(self):
        model = UniformSpeedupModel(TabulatedSpeedup([1.0, 1.5]))
        tables = model.tables_for(np.array([1.0, 2.0]), 2)
        assert tables.shape == (2, 2)
        assert np.allclose(tables, [[1.0, 1.5], [1.0, 1.5]])
