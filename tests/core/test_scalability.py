"""Tests for the max-software-parallelism selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import DemandProfile
from repro.core.scalability import choose_max_degree, speedup_report
from repro.errors import ConfigurationError
from repro.workloads.bing import bing_workload
from repro.workloads.lucene import lucene_workload


def _profile_with_tables(tables: np.ndarray) -> DemandProfile:
    seq = np.linspace(10.0, 100.0, len(tables))
    return DemandProfile(seq, tables)


class TestChooseMaxDegree:
    def test_flat_curve_stays_sequential(self):
        tables = np.tile([1.0, 1.0, 1.0], (20, 1))
        assert choose_max_degree(_profile_with_tables(tables)) == 1

    def test_linear_curve_uses_everything(self):
        tables = np.tile([1.0, 2.0, 3.0, 4.0], (20, 1))
        assert choose_max_degree(_profile_with_tables(tables)) == 4

    def test_plateau_cuts_off(self):
        tables = np.tile([1.0, 1.8, 2.4, 2.45, 2.46], (20, 1))
        assert choose_max_degree(_profile_with_tables(tables)) == 3

    def test_cap(self):
        tables = np.tile([1.0, 2.0, 3.0, 4.0], (20, 1))
        assert choose_max_degree(_profile_with_tables(tables), cap=2) == 2

    def test_rejects_bad_params(self):
        tables = np.tile([1.0, 2.0], (20, 1))
        profile = _profile_with_tables(tables)
        with pytest.raises(ConfigurationError):
            choose_max_degree(profile, longest_fraction=0.0)
        with pytest.raises(ConfigurationError):
            choose_max_degree(profile, min_marginal_gain=-0.1)

    def test_lucene_selects_four(self):
        """The paper configures Lucene with n = 4."""
        profile = lucene_workload(profile_size=2000).profile
        assert choose_max_degree(profile) == 4

    def test_bing_selects_three(self):
        """The paper configures Bing with n = 3."""
        profile = bing_workload(profile_size=2000).profile
        assert choose_max_degree(profile) == 3


class TestSpeedupReport:
    def test_long_requests_scale_best(self):
        profile = lucene_workload(profile_size=2000).profile
        for row in speedup_report(profile):
            assert row.longest >= row.all_requests >= row.shortest

    def test_degree_one_is_unity(self):
        profile = bing_workload(profile_size=1000).profile
        row = speedup_report(profile, max_degree=1)[0]
        assert row.all_requests == pytest.approx(1.0)
        assert row.longest == pytest.approx(1.0)

    def test_bing_speedup_anchors(self):
        """Figure 1(b): long > 2x at degree 3, short ~1.2x."""
        profile = bing_workload(profile_size=5000).profile
        rows = {r.degree: r for r in speedup_report(profile)}
        assert rows[3].longest > 2.0
        assert rows[3].shortest == pytest.approx(1.2, abs=0.15)
