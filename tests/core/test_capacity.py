"""Tests for capacity planning / TCO helpers."""

from __future__ import annotations

import pytest

from repro.core.capacity import (
    LoadLatencyPoint,
    max_sustainable_rps,
    server_reduction,
    servers_needed,
)
from repro.errors import ConfigurationError

_BASE = [(100, 80.0), (200, 100.0), (300, 150.0), (400, 260.0)]
_BETTER = [(100, 70.0), (200, 80.0), (300, 100.0), (400, 160.0)]


class TestMaxSustainableRps:
    def test_interpolates_crossing(self):
        # target 120 between (200, 100) and (300, 150): 200 + 100 * 20/50
        assert max_sustainable_rps(_BASE, 120.0) == pytest.approx(240.0)

    def test_target_never_exceeded(self):
        assert max_sustainable_rps(_BASE, 1000.0) == 400.0

    def test_target_below_first_point(self):
        assert max_sustainable_rps(_BASE, 50.0) == 0.0

    def test_exact_point(self):
        assert max_sustainable_rps(_BASE, 100.0) == pytest.approx(200.0)

    def test_accepts_point_objects(self):
        points = [LoadLatencyPoint(100, 80.0), LoadLatencyPoint(200, 160.0)]
        assert max_sustainable_rps(points, 120.0) == pytest.approx(150.0)

    def test_non_monotone_latency_uses_last_crossing(self):
        noisy = [(100, 90.0), (200, 110.0), (300, 105.0), (400, 200.0)]
        # last point under 120 is 300; crossing toward 400
        got = max_sustainable_rps(noisy, 120.0)
        assert 300.0 < got < 400.0

    def test_rejects_bad_series(self):
        with pytest.raises(ConfigurationError):
            max_sustainable_rps([(100, 80.0)], 100.0)
        with pytest.raises(ConfigurationError):
            max_sustainable_rps([(200, 80.0), (100, 90.0)], 100.0)
        with pytest.raises(ConfigurationError):
            max_sustainable_rps(_BASE, 0.0)


class TestServersNeeded:
    def test_ceiling(self):
        assert servers_needed(1000.0, 240.0) == 5
        assert servers_needed(960.0, 240.0) == 4

    def test_minimum_one(self):
        assert servers_needed(0.0, 100.0) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            servers_needed(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            servers_needed(100.0, 0.0)


class TestServerReduction:
    def test_asymptotic_ratio(self):
        # base sustains 240, improved sustains 340 at 120 ms
        reduction = server_reduction(_BASE, _BETTER, 120.0)
        base = max_sustainable_rps(_BASE, 120.0)
        improved = max_sustainable_rps(_BETTER, 120.0)
        assert reduction == pytest.approx(1.0 - base / improved)
        assert 0.0 < reduction < 1.0

    def test_with_total_load(self):
        reduction = server_reduction(_BASE, _BETTER, 120.0, total_rps=10_000.0)
        assert 0.0 <= reduction < 1.0

    def test_identical_series_is_zero(self):
        assert server_reduction(_BASE, _BASE, 120.0) == pytest.approx(0.0)

    def test_rejects_infeasible_policy(self):
        with pytest.raises(ConfigurationError):
            server_reduction([(100, 500.0), (200, 600.0)], _BETTER, 120.0)
        with pytest.raises(ConfigurationError):
            server_reduction(_BASE, [(100, 500.0), (200, 600.0)], 120.0)
