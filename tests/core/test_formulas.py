"""Tests for the Figure 6 equations (1)-(5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demand import DemandProfile, RequestProfile
from repro.core.formulas import (
    average_parallelism,
    busy_time,
    busy_times,
    completion_time,
    completion_times,
    mean_latency,
    tail_latency,
    total_average_parallelism,
    weighted_order_statistic,
)
from repro.core.schedule import IntervalSchedule
from repro.core.speedup import TabulatedSpeedup
from repro.errors import InvalidScheduleError

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0])


def _fig5_profile() -> DemandProfile:
    seq = np.array([50.0, 150.0])
    return DemandProfile(seq, np.tile([1.0, 1.5, 2.0], (2, 1)))


class TestPaperWorkedExample:
    """The Section 4.1 numbers: S = {0, 50, 0}, s(3) = 2."""

    def test_short_request_finishes_sequentially(self):
        req = RequestProfile(50.0, _CURVE)
        sched = IntervalSchedule([0.0, 50.0, 0.0])
        assert completion_time(req, sched) == pytest.approx(50.0)
        assert busy_time(req, sched) == pytest.approx(50.0)
        assert average_parallelism(req, sched) == pytest.approx(1.0)

    def test_long_request_speeds_up(self):
        """Long requests finish 50 ms later with speedup 2 — tail 100 ms."""
        req = RequestProfile(150.0, _CURVE)
        sched = IntervalSchedule([0.0, 50.0, 0.0])
        assert completion_time(req, sched) == pytest.approx(100.0)
        # busy = 1 * 50 + 3 * 50
        assert busy_time(req, sched) == pytest.approx(200.0)

    def test_average_parallelism_of_mix(self):
        """The paper: average parallelism 1.67 = 250 / 150."""
        profile = _fig5_profile()
        sched = IntervalSchedule([0.0, 50.0, 0.0])
        ap = total_average_parallelism(profile, sched, q_r=1)
        assert ap == pytest.approx(250.0 / 150.0)

    def test_immediate_d3(self):
        """q <= 2: everyone starts at degree 3, long tail = 75 ms."""
        profile = _fig5_profile()
        sched = IntervalSchedule([0.0, 0.0, 0.0])
        times = completion_times(profile, sched)
        assert times == pytest.approx([25.0, 75.0])
        assert total_average_parallelism(profile, sched, 2) == pytest.approx(6.0)

    def test_admission_delay_shifts_everything(self):
        profile = _fig5_profile()
        base = IntervalSchedule([0.0, 50.0, 0.0])
        delayed = IntervalSchedule([30.0, 50.0, 0.0])
        shift = completion_times(profile, delayed) - completion_times(profile, base)
        assert shift == pytest.approx([30.0, 30.0])
        assert tail_latency(profile, delayed) == pytest.approx(
            tail_latency(profile, base) + 30.0
        )
        assert mean_latency(profile, delayed) == pytest.approx(
            mean_latency(profile, base) + 30.0
        )
        # Admission waiting counts as degree 0: busy unchanged.
        assert busy_times(profile, delayed) == pytest.approx(
            busy_times(profile, base)
        )


class TestScalarVectorAgreement:
    @given(
        seqs=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=20
        ),
        v0=st.sampled_from([0.0, 10.0, 50.0]),
        v1=st.sampled_from([0.0, 25.0, 100.0]),
        v2=st.sampled_from([0.0, 25.0, 100.0]),
    )
    @settings(max_examples=100)
    def test_vectorized_equals_scalar(self, seqs, v0, v1, v2):
        profile = DemandProfile(
            np.array(seqs), np.tile([1.0, 1.5, 2.0], (len(seqs), 1))
        )
        sched = IntervalSchedule([v0, v1, v2])
        vec_times = completion_times(profile, sched)
        vec_busy = busy_times(profile, sched)
        for i in range(len(profile)):
            req = profile.request(i)
            assert vec_times[i] == pytest.approx(completion_time(req, sched))
            assert vec_busy[i] == pytest.approx(busy_time(req, sched))

    def test_schedule_wider_than_profile_rejected(self):
        profile = _fig5_profile()
        with pytest.raises(InvalidScheduleError):
            completion_times(profile, IntervalSchedule([0.0] * 4))


class TestInvariants:
    @given(
        seq=st.floats(min_value=1.0, max_value=1000.0),
        v1=st.sampled_from([0.0, 20.0, 80.0]),
        v2=st.sampled_from([0.0, 20.0, 80.0]),
    )
    @settings(max_examples=100)
    def test_parallelism_never_slower_than_sequential_tail(self, seq, v1, v2):
        """Adding parallelism phases never makes a request slower than
        pure sequential execution (speedups >= 1)."""
        req = RequestProfile(seq, _CURVE)
        sched = IntervalSchedule([0.0, v1, v2])
        assert completion_time(req, sched) <= seq + 1e-9

    @given(seq=st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=50)
    def test_sequential_schedule_is_identity(self, seq):
        req = RequestProfile(seq, _CURVE)
        sched = IntervalSchedule([0.0, 2000.0, 0.0])
        assert completion_time(req, sched) == pytest.approx(seq)
        assert average_parallelism(req, sched) == pytest.approx(1.0)

    @given(
        seqs=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=2, max_size=20
        )
    )
    @settings(max_examples=50)
    def test_busy_at_least_work(self, seqs):
        """CPU thread-time >= sequential work (parallelism only adds)."""
        profile = DemandProfile(
            np.array(seqs), np.tile([1.0, 1.5, 2.0], (len(seqs), 1))
        )
        sched = IntervalSchedule([0.0, 10.0, 10.0])
        assert np.all(busy_times(profile, sched) >= profile.seq - 1e-9)

    def test_ap_scales_linearly_with_load(self):
        profile = _fig5_profile()
        sched = IntervalSchedule([0.0, 50.0, 0.0])
        one = total_average_parallelism(profile, sched, 1)
        five = total_average_parallelism(profile, sched, 5)
        assert five == pytest.approx(5 * one)

    def test_ap_rejects_bad_load(self):
        with pytest.raises(ValueError):
            total_average_parallelism(_fig5_profile(), IntervalSchedule([0.0]), 0)


class TestWeightedOrderStatistic:
    def test_matches_paper_definition_unit_weights(self):
        values = np.arange(1.0, 101.0)
        weights = np.ones(100)
        # L[ceil(0.99 * 100)] = L[99]
        assert weighted_order_statistic(values, weights, 0.99) == 99.0
        assert weighted_order_statistic(values, weights, 1.0) == 100.0
        assert weighted_order_statistic(values, weights, 0.01) == 1.0

    def test_respects_weights(self):
        values = np.array([10.0, 99.0])
        weights = np.array([999.0, 1.0])
        assert weighted_order_statistic(values, weights, 0.99) == 10.0
        assert weighted_order_statistic(values, weights, 0.9999) == 99.0

    def test_unsorted_input(self):
        values = np.array([30.0, 10.0, 20.0])
        weights = np.ones(3)
        assert weighted_order_statistic(values, weights, 1.0) == 30.0
        assert weighted_order_statistic(values, weights, 0.34) == 20.0

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            weighted_order_statistic(np.array([1.0]), np.array([1.0]), 1.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_order_statistic(np.array([1.0]), np.array([1.0, 2.0]), 0.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50
        ),
        phi=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_unit_weight_matches_numpy_ceil_index(self, values, phi):
        import math

        arr = np.array(values)
        expected = np.sort(arr)[math.ceil(phi * len(arr) - 1e-9) - 1]
        got = weighted_order_statistic(arr, np.ones(len(arr)), phi)
        assert got == expected
