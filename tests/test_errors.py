"""The exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.InvalidScheduleError,
        errors.InvalidProfileError,
        errors.InvalidSpeedupError,
        errors.SearchInfeasibleError,
        errors.SimulationError,
        errors.ConfigurationError,
        errors.DeadlineExceededError,
        errors.RequestShedError,
        errors.FaultInjectionError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)


def test_hierarchy_is_flat_and_disjoint():
    """Each leaf derives directly from ReproError, not from a sibling —
    catching one class never accidentally swallows another."""
    leaves = [
        errors.DeadlineExceededError,
        errors.RequestShedError,
        errors.FaultInjectionError,
        errors.ConfigurationError,
        errors.SimulationError,
    ]
    for cls in leaves:
        assert cls.__bases__ == (errors.ReproError,)
    for a in leaves:
        for b in leaves:
            if a is not b:
                assert not issubclass(a, b)


def test_one_except_clause_catches_library_failures():
    from repro.core.schedule import IntervalSchedule

    with pytest.raises(errors.ReproError):
        IntervalSchedule([])


def test_fault_injection_error_raised_by_bad_plan():
    from repro.faults import FaultPlan

    with pytest.raises(errors.FaultInjectionError):
        FaultPlan(straggler_rate=-0.1)
