"""The exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.InvalidScheduleError,
        errors.InvalidProfileError,
        errors.InvalidSpeedupError,
        errors.SearchInfeasibleError,
        errors.SimulationError,
        errors.ConfigurationError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)


def test_one_except_clause_catches_library_failures():
    from repro.core.schedule import IntervalSchedule

    with pytest.raises(errors.ReproError):
        IntervalSchedule([])
