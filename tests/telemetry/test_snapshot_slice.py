"""Histogram snapshot/slice and registry snapshot/delta contracts.

The live plane's storage primitive: cumulative instruments snapshot at
window boundaries and subtract into exact per-window deltas — counters
by integer subtraction, histograms bucket-for-bucket.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry
from repro.telemetry.histogram import LogHistogram


class TestHistogramCopy:
    def test_copy_is_independent(self):
        h = LogHistogram()
        h.record_many([1.0, 5.0, 100.0])
        snap = h.copy()
        h.record(1000.0)
        assert snap.count == 3
        assert h.count == 4
        assert snap.state() != h.state()

    def test_copy_state_matches(self):
        h = LogHistogram()
        h.record_many([0.0, 2.5, 2.5, 40.0])
        assert h.copy().state() == h.state()


class TestSliceSince:
    def test_slice_holds_exactly_the_window(self):
        h = LogHistogram()
        h.record_many([1.0, 2.0, 3.0])
        snap = h.copy()
        h.record_many([10.0, 20.0])
        window = h.slice_since(snap)
        assert window.count == 2
        assert window.sum == pytest.approx(30.0)

    def test_slices_merge_back_to_cumulative_buckets(self):
        h = LogHistogram()
        snaps = [h.copy()]
        values = [1.5, 8.0, 0.0, 99.0, 3.0, 3.0, 250.0]
        for i, value in enumerate(values):
            h.record(value)
            if i % 2:
                snaps.append(h.copy())
        snaps.append(h.copy())
        merged = LogHistogram()
        for earlier, later in zip(snaps, snaps[1:]):
            merged.update(later.slice_since(earlier))
        # Bucket counts are integers: the merge is exact.
        assert merged.state()[2:5] == h.state()[2:5]  # buckets, zero, count
        assert merged.sum == pytest.approx(h.sum, rel=1e-12)

    def test_slice_min_max_are_bucket_bounds(self):
        h = LogHistogram(relative_error=0.01)
        snap = h.copy()
        h.record(50.0)
        window = h.slice_since(snap)
        # Bounds bracket the observation within one gamma factor.
        assert window.min <= 50.0 <= window.max
        gamma = (1 + 0.01) / (1 - 0.01)
        assert window.max / window.min <= gamma * (1 + 1e-9)

    def test_slice_of_identical_snapshots_is_empty(self):
        h = LogHistogram()
        h.record(5.0)
        window = h.copy().slice_since(h.copy())
        assert window.count == 0
        assert math.isnan(window.percentile(0.5))

    def test_percentile_guarantee_survives_slicing(self):
        h = LogHistogram(relative_error=0.01)
        snap = h.copy()
        h.record_many(float(v) for v in range(1, 200))
        window = h.slice_since(snap)
        for q in (0.5, 0.9, 0.99):
            assert window.percentile(q) == pytest.approx(
                h.percentile(q), rel=0.05
            )

    def test_mismatched_grid_raises(self):
        a = LogHistogram(relative_error=0.01)
        b = LogHistogram(relative_error=0.02)
        with pytest.raises(ConfigurationError):
            a.slice_since(b)

    def test_unrelated_snapshot_raises(self):
        a = LogHistogram()
        a.record(1.0)
        b = LogHistogram()
        b.record_many([500.0, 600.0])
        with pytest.raises(ConfigurationError):
            b.slice_since(a)  # bucket for 1.0 would go negative

    def test_later_snapshot_as_previous_raises(self):
        h = LogHistogram()
        h.record(1.0)
        snap = h.copy()
        h.record(2.0)
        with pytest.raises(ConfigurationError):
            snap.slice_since(h)


class TestDumpState:
    def test_round_trip_is_bit_identical(self):
        h = LogHistogram()
        h.record_many([0.0, 0.5, 7.0, 7.0, 3000.0])
        data = json.loads(json.dumps(h.dump_state()))
        assert LogHistogram.from_state(data).state() == h.state()

    def test_empty_round_trip(self):
        h = LogHistogram()
        rebuilt = LogHistogram.from_state(h.dump_state())
        assert rebuilt.state() == h.state()
        assert rebuilt.count == 0


class TestRegistrySnapshot:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("arrivals").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("latency_ms").record_many([5.0, 9.0])
        return registry

    def test_delta_counters_subtract_exactly(self):
        registry = self._registry()
        before = registry.snapshot()
        registry.counter("arrivals").inc(4)
        registry.counter("sheds").inc(1)
        delta = registry.snapshot().delta_since(before)
        assert delta.counters["arrivals"] == 4
        assert delta.counters["sheds"] == 1

    def test_delta_histograms_slice(self):
        registry = self._registry()
        before = registry.snapshot()
        registry.histogram("latency_ms").record(100.0)
        delta = registry.snapshot().delta_since(before)
        assert delta.histograms["latency_ms"].count == 1

    def test_delta_gauges_keep_latest_and_high_water(self):
        registry = self._registry()
        before = registry.snapshot()
        registry.gauge("depth").set(9.0)
        registry.gauge("depth").set(4.0)
        delta = registry.snapshot().delta_since(before)
        assert delta.gauges["depth"] == 4.0
        assert delta.gauge_max["depth"] == 9.0

    def test_snapshot_is_isolated_from_registry(self):
        registry = self._registry()
        snap = registry.snapshot()
        registry.histogram("latency_ms").record(1e6)
        registry.counter("arrivals").inc()
        assert snap.counters["arrivals"] == 3
        assert snap.histograms["latency_ms"].count == 2

    def test_foreign_snapshot_raises(self):
        registry = self._registry()
        later = registry.snapshot()
        other = MetricsRegistry()
        other.counter("arrivals").inc(10)
        with pytest.raises(ConfigurationError):
            later.delta_since(other.snapshot())
