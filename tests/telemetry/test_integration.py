"""End-to-end telemetry wiring: sim engine, trace recorder, search
executor, live runtime, and cluster simulation all report into one
pipeline — and report nothing when disabled."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.core.table import IntervalTable
from repro.cluster.simulation import simulate_cluster
from repro.runtime import LiveFMServer, LiveRequest, make_slices
from repro.schedulers import FMScheduler, SequentialScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import parse_query
from repro.sim.engine import ArrivalSpec, simulate
from repro.sim.trace import SCHED_TRACK, TraceRecorder
from repro.telemetry import Telemetry, install
from repro.workloads.arrivals import UniformProcess
from repro.workloads.workload import Workload

_CURVE = TabulatedSpeedup([1.0, 1.5, 2.0, 2.4])


def _specs(pairs) -> list[ArrivalSpec]:
    return [ArrivalSpec(t, s, _CURVE) for t, s in pairs]


def _capacity_table(rows: int = 2) -> IntervalTable:
    """``rows`` immediate-start rows, then e1 (queue for an exit)."""
    return IntervalTable(
        [Schedule([ScheduleStep(0.0, 1)])] * rows
        + [Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True)]
    )


class TestSimEngine:
    def test_run_spans_match_records(self):
        telemetry = Telemetry()
        result = simulate(
            _specs([(0.0, 50.0), (10.0, 80.0), (20.0, 30.0)]),
            SequentialScheduler(),
            cores=4,
            telemetry=telemetry,
        )
        runs = [s for s in telemetry.tracer.by_track("sim") if s.name == "run"]
        assert len(runs) == 3
        by_lane = {s.lane: s for s in runs}
        for record in result.records:
            span = by_lane[record.rid]
            assert span.start_ms == pytest.approx(record.start_ms)
            assert span.end_ms == pytest.approx(record.finish_ms)
            assert span.attrs["latency_ms"] == pytest.approx(record.latency_ms)
        metrics = telemetry.metrics
        assert metrics.counters["sim.arrivals"].value == 3
        assert metrics.counters["sim.completions"].value == 3
        assert metrics.histograms["sim.latency_ms"].count == 3

    def test_queue_span_precedes_run(self):
        telemetry = Telemetry()
        simulate(
            _specs([(0.0, 100.0)] * 3),
            FMScheduler(_capacity_table(rows=2)),
            cores=8,
            telemetry=telemetry,
        )
        spans = telemetry.tracer.by_track("sim")
        queues = [s for s in spans if s.name == "queue"]
        assert queues, "third simultaneous arrival must record queueing"
        for queue_span in queues:
            run = next(
                s for s in spans if s.name == "run" and s.lane == queue_span.lane
            )
            assert queue_span.end_ms == pytest.approx(run.start_ms)
            assert queue_span.attrs["wait"] == "queued"
        assert telemetry.metrics.gauges["sim.queue_depth"].max_value >= 1

    def test_degree_raises_counted(self):
        climbing = Schedule(
            [ScheduleStep(0.0, 1), ScheduleStep(50.0, 2), ScheduleStep(100.0, 4)]
        )
        telemetry = Telemetry()
        simulate(
            _specs([(0.0, 400.0)]),
            FMScheduler(IntervalTable([climbing])),
            cores=8,
            quantum_ms=5.0,
            telemetry=telemetry,
        )
        assert telemetry.metrics.counters["sim.degree_raises"].value >= 2

    def test_shed_spans_and_counters(self):
        telemetry = Telemetry()
        result = simulate(
            _specs([(0.0, 200.0)] * 6),
            FMScheduler(_capacity_table(rows=1), max_backlog=1),
            cores=8,
            telemetry=telemetry,
        )
        assert result.shed_count > 0
        sheds = [s for s in telemetry.tracer.by_track("sim") if s.name == "shed"]
        assert len(sheds) == result.shed_count
        assert telemetry.metrics.counters["sim.sheds"].value == result.shed_count
        # shed requests never enter the latency histogram
        assert telemetry.metrics.histograms["sim.latency_ms"].count == len(
            result.records
        )

    def test_disabled_telemetry_records_nothing(self):
        ambient = Telemetry()
        with install(ambient):
            simulate(
                _specs([(0.0, 50.0)]),
                SequentialScheduler(),
                cores=4,
                telemetry=Telemetry(enabled=False),
            )
        assert ambient.tracer.spans == []
        assert ambient.metrics.as_dict()["counters"] == {}

    def test_ambient_telemetry_is_picked_up(self):
        ambient = Telemetry()
        with install(ambient):
            simulate(_specs([(0.0, 50.0)]), SequentialScheduler(), cores=4)
        assert any(s.name == "run" for s in ambient.tracer.by_track("sim"))

    def test_identical_results_with_and_without_telemetry(self):
        specs = [(i * 7.0, 40.0 + 11.0 * (i % 5)) for i in range(30)]
        plain = simulate(_specs(specs), SequentialScheduler(), cores=4)
        traced = simulate(
            _specs(specs), SequentialScheduler(), cores=4, telemetry=Telemetry()
        )
        assert [r.finish_ms for r in plain.records] == [
            r.finish_ms for r in traced.records
        ]


class TestTraceRecorderIntegration:
    def test_shared_pipeline_holds_engine_and_scheduler_spans(self):
        telemetry = Telemetry()
        recorder = TraceRecorder(SequentialScheduler(), telemetry=telemetry)
        simulate(
            _specs([(0.0, 50.0), (5.0, 50.0)]),
            recorder,
            cores=4,
            telemetry=telemetry,
        )
        tracks = set(telemetry.tracer.tracks())
        assert {"sim", SCHED_TRACK} <= tracks
        assert recorder.tracer is telemetry.tracer

    def test_shim_events_reflect_shared_spans(self):
        telemetry = Telemetry()
        recorder = TraceRecorder(SequentialScheduler(), telemetry=telemetry)
        simulate(_specs([(0.0, 50.0)]), recorder, cores=4, telemetry=telemetry)
        assert [e.kind.value for e in recorder.events] == ["admit", "exit"]

    def test_reset_shared_removes_only_scheduler_track(self):
        telemetry = Telemetry()
        recorder = TraceRecorder(SequentialScheduler(), telemetry=telemetry)
        simulate(_specs([(0.0, 50.0)]), recorder, cores=4, telemetry=telemetry)
        recorder.reset()
        assert recorder.events == []
        assert telemetry.tracer.by_track("sim"), "engine spans must survive"


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def index(self):
        return InvertedIndex.build(generate_corpus(150, seed=3), num_segments=4)

    def test_query_and_segment_spans(self, index):
        telemetry = Telemetry()
        engine = SearchEngine(index, telemetry=telemetry)
        engine.execute(parse_query(generate_query_log(1, seed=5)[0]))
        spans = telemetry.tracer.by_track("search")
        query_spans = [s for s in spans if s.name == "query"]
        segment_spans = [s for s in spans if s.name == "segment"]
        assert len(query_spans) == 1
        assert len(segment_spans) == 4
        for segment_span in segment_spans:
            assert segment_span.parent_id == query_spans[0].span_id
        assert telemetry.metrics.counters["search.queries"].value == 1
        assert telemetry.metrics.counters["search.segments"].value == 4
        assert telemetry.metrics.histograms["search.coverage"].count == 1

    def test_deadline_skips_are_counted(self, index):
        telemetry = Telemetry()
        engine = SearchEngine(index, telemetry=telemetry)
        execution = engine.execute(
            parse_query(generate_query_log(1, seed=5)[0]), deadline_units=1e-6
        )
        assert execution.is_partial
        metrics = telemetry.metrics
        assert metrics.counters["search.segments_skipped"].value == len(
            execution.skipped_segments
        )
        assert metrics.counters["search.deadline_hits"].value == 1

    def test_results_unchanged_by_telemetry(self, index):
        query = parse_query(generate_query_log(1, seed=9)[0])
        plain = SearchEngine(index).execute(query)
        traced = SearchEngine(index, telemetry=Telemetry()).execute(query)
        assert [h.doc_id for h in plain.hits] == [h.doc_id for h in traced.hits]


class TestLiveRuntime:
    def _table(self) -> IntervalTable:
        return IntervalTable(
            [Schedule([ScheduleStep(0.0, 1), ScheduleStep(60.0, 2)])] * 4
            + [Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True)]
        )

    def test_wall_clock_spans_and_latency_histogram(self):
        telemetry = Telemetry()
        server = LiveFMServer(
            self._table(), workers=4, quantum_ms=5.0, telemetry=telemetry
        )
        for rid in range(3):
            server.submit(LiveRequest(rid, make_slices(30.0, 10.0)))
        stats = server.drain(timeout_s=10.0)
        assert stats.completed == 3
        runs = [s for s in telemetry.tracer.by_track("runtime") if s.name == "run"]
        assert len(runs) == 3
        for span in runs:
            assert span.duration_ms > 0.0
        metrics = telemetry.metrics
        assert metrics.counters["runtime.arrivals"].value == 3
        assert metrics.counters["runtime.completions"].value == 3
        assert metrics.histograms["runtime.latency_ms"].count == 3

    def test_queue_shed_records_shed_span(self):
        telemetry = Telemetry()
        server = LiveFMServer(
            self._table(), workers=2, quantum_ms=5.0, max_queue=0,
            telemetry=telemetry,
        )
        submitted = 0
        for rid in range(8):
            try:
                server.submit(LiveRequest(rid, make_slices(60.0, 10.0)))
                submitted += 1
            except Exception:
                pass
        server.drain(timeout_s=15.0)
        sheds = telemetry.metrics.counters.get("runtime.sheds")
        if sheds is not None and sheds.value:
            shed_spans = [
                s for s in telemetry.tracer.by_track("runtime") if s.name == "shed"
            ]
            assert len(shed_spans) == sheds.value


class TestCluster:
    def _workload(self) -> Workload:
        curve = TabulatedSpeedup([1.0, 1.7, 2.2, 2.5])

        def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
            return rng.uniform(10.0, 60.0, size=n)

        return Workload(
            name="test",
            sampler=sampler,
            speedup_model=UniformSpeedupModel(curve),
            max_degree=4,
            profile_size=100,
        )

    def test_shard_spans_one_per_server_query(self):
        telemetry = Telemetry()
        simulate_cluster(
            scheduler_factory=SequentialScheduler,
            workload=self._workload(),
            num_servers=3,
            num_queries=10,
            process=UniformProcess(30.0),
            cores=4,
            seed=2,
            telemetry=telemetry,
        )
        shard_spans = telemetry.tracer.by_track("cluster")
        assert len(shard_spans) == 30
        assert {s.lane for s in shard_spans} == set(range(10))
        assert {s.attrs["server"] for s in shard_spans} == {0, 1, 2}
        assert telemetry.metrics.histograms["cluster.query_latency_ms"].count == 10

    def test_inner_engines_do_not_leak_into_ambient(self):
        ambient = Telemetry()
        with install(ambient):
            simulate_cluster(
                scheduler_factory=SequentialScheduler,
                workload=self._workload(),
                num_servers=2,
                num_queries=5,
                process=UniformProcess(30.0),
                cores=4,
                seed=2,
            )
        tracks = set(ambient.tracer.tracks())
        assert "cluster" in tracks
        assert "sim" not in tracks, "per-server engines must stay suppressed"
