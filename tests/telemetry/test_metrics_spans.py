"""Tests for metrics registry, clocks, and span tracing."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    current_telemetry,
    install,
    resolve_telemetry,
)
from repro.telemetry.clock import ManualClock, VirtualClock, WallClock


class TestClocks:
    def test_wall_clock_starts_near_zero_and_advances(self):
        clock = WallClock()
        first = clock.now_ms()
        assert first >= 0.0
        time.sleep(0.002)
        assert clock.now_ms() > first

    def test_virtual_clock_follows_source(self):
        now = {"t": 10.0}
        clock = VirtualClock(lambda: now["t"])
        assert clock.now_ms() == 10.0
        now["t"] = 25.0
        assert clock.now_ms() == 25.0

    def test_manual_clock_advances_and_rejects_backwards(self):
        clock = ManualClock()
        clock.advance(5.0)
        assert clock.now_ms() == 5.0
        clock.set(7.5)
        assert clock.now_ms() == 7.5
        with pytest.raises(ConfigurationError):
            clock.set(3.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_monotone(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_high_water_mark(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.max_value == 9.0

    def test_as_dict_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(4)
        registry.histogram("h").record(1.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"]["g"] == {"value": 4.0, "max": 4.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTracer:
    def test_begin_end_records_span(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.begin("work", track="t", lane=3, at_ms=10.0, size=4)
        assert span.is_open
        tracer.end(span, at_ms=15.0, ok=True)
        assert tracer.spans == [span]
        assert span.duration_ms == 5.0
        assert span.attrs == {"size": 4, "ok": True}

    def test_end_before_start_raises(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.begin("work", at_ms=10.0)
        with pytest.raises(ConfigurationError):
            tracer.end(span, at_ms=9.0)

    def test_double_end_raises(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.begin("work", at_ms=0.0)
        tracer.end(span, at_ms=1.0)
        with pytest.raises(ConfigurationError):
            tracer.end(span, at_ms=2.0)

    def test_explicit_parent_links(self):
        tracer = Tracer(clock=ManualClock())
        parent = tracer.begin("query", at_ms=0.0)
        child = tracer.begin("segment", parent=parent, at_ms=1.0)
        assert child.parent_id == parent.span_id

    def test_context_propagation_nests(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                instant = tracer.instant("tick")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert instant.parent_id == inner.span_id
        # inner closed first, then outer
        assert tracer.spans.index(inner) > tracer.spans.index(instant)
        assert tracer.spans.index(outer) > tracer.spans.index(inner)

    def test_complete_and_instant(self):
        tracer = Tracer(clock=ManualClock())
        done = tracer.complete("queued", 2.0, 8.0, track="sim", lane=1)
        mark = tracer.instant("boost", track="sim", lane=1, at_ms=5.0)
        assert done.duration_ms == 6.0
        assert mark.kind == "instant"
        assert mark.start_ms == mark.end_ms == 5.0

    def test_by_track_and_tracks(self):
        tracer = Tracer(clock=ManualClock())
        tracer.complete("a", 0.0, 1.0, track="sim")
        tracer.complete("b", 0.0, 1.0, track="search")
        tracer.complete("c", 1.0, 2.0, track="sim")
        assert [s.name for s in tracer.by_track("sim")] == ["a", "c"]
        assert set(tracer.tracks()) == {"sim", "search"}

    def test_reset_clears_spans(self):
        tracer = Tracer(clock=ManualClock())
        tracer.complete("a", 0.0, 1.0)
        tracer.reset()
        assert tracer.spans == []

    def test_virtual_clock_timestamps(self):
        now = {"t": 100.0}
        tracer = Tracer(clock=VirtualClock(lambda: now["t"]))
        span = tracer.begin("work")
        now["t"] = 140.0
        tracer.end(span)
        assert span.start_ms == 100.0
        assert span.end_ms == 140.0


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        span = tracer.begin("work", at_ms=1.0)
        tracer.end(span, at_ms=2.0)
        tracer.instant("tick")
        tracer.complete("done", 0.0, 1.0)
        assert tracer.spans == []

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestTelemetryResolution:
    def test_explicit_wins(self):
        explicit = Telemetry()
        assert resolve_telemetry(explicit) is explicit

    def test_explicit_disabled_resolves_to_none_even_under_ambient(self):
        ambient = Telemetry()
        with install(ambient):
            assert resolve_telemetry(Telemetry(enabled=False)) is None

    def test_ambient_used_when_no_explicit(self):
        ambient = Telemetry()
        assert resolve_telemetry() is None
        with install(ambient):
            assert resolve_telemetry() is ambient
            assert current_telemetry() is ambient
        assert resolve_telemetry() is None

    def test_install_none_uninstalls(self):
        ambient = Telemetry()
        with install(ambient):
            with install(None):
                assert resolve_telemetry() is None
            assert resolve_telemetry() is ambient

    def test_disabled_pipeline_uses_null_tracer(self):
        disabled = Telemetry(enabled=False)
        assert disabled.tracer is NULL_TRACER

    def test_reset_clears_metrics_and_spans(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("c").inc()
        telemetry.tracer.complete("a", 0.0, 1.0)
        telemetry.reset()
        assert telemetry.metrics.as_dict()["counters"] == {}
        assert telemetry.tracer.spans == []
