"""Tests for the exporters: Chrome trace JSON, JSONL, text dashboard."""

from __future__ import annotations

import json

from repro.telemetry import (
    Telemetry,
    Tracer,
    read_spans_jsonl,
    render_summary,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.clock import ManualClock


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=ManualClock())
    outer = tracer.complete("query", 0.0, 30.0, track="search", lane=1, top_k=10)
    tracer.complete(
        "segment", 0.0, 12.0, track="search", lane=1, parent=outer, segment=0
    )
    tracer.complete("run", 5.0, 25.0, track="sim", lane=7, degree=2)
    tracer.instant("boost", track="sim", lane=7, at_ms=15.0, degree=3)
    tracer.complete("shard0", 2.0, 40.0, track="cluster", lane=3, server=0)
    return tracer


class TestChromeTrace:
    def test_document_is_valid_json(self, tmp_path):
        telemetry = Telemetry()
        telemetry.tracer.spans.extend(_sample_tracer().spans)
        telemetry.metrics.counter("sim.arrivals").inc(3)
        path = write_chrome_trace(tmp_path / "trace.json", telemetry)
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["metrics"]["counters"] == {"sim.arrivals": 3}

    def test_tracks_become_processes_with_metadata(self):
        document = to_chrome_trace(_sample_tracer().spans)
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        processes = [e for e in meta if e["name"] == "process_name"]
        names = {e["args"]["name"] for e in processes}
        assert names == {"search", "sim", "cluster"}
        # distinct pids per track
        assert len({e["pid"] for e in processes}) == 3
        # every (pid, tid) lane carries a thread_name label
        threads = [e for e in meta if e["name"] == "thread_name"]
        span_lanes = {
            (e["pid"], e["tid"])
            for e in document["traceEvents"]
            if e["ph"] != "M"
        }
        assert {(e["pid"], e["tid"]) for e in threads} >= span_lanes

    def test_events_have_consistent_ts_dur(self):
        document = to_chrome_trace(_sample_tracer().spans)
        events = [e for e in document["traceEvents"] if e["ph"] in ("X", "i")]
        assert events, "no span events exported"
        for event in events:
            assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            else:
                assert event["s"] == "t"

    def test_ts_monotone_per_lane(self):
        document = to_chrome_trace(_sample_tracer().spans)
        last: dict[tuple[int, int], float] = {}
        for event in document["traceEvents"]:
            if event["ph"] not in ("X", "i"):
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]

    def test_equal_start_spans_nest_longest_first(self):
        document = to_chrome_trace(_sample_tracer().spans)
        search = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 1 and e["name"] in ("query", "segment")
        ]
        assert [e["name"] for e in search] == ["query", "segment"]

    def test_open_spans_are_excluded(self):
        tracer = Tracer(clock=ManualClock())
        tracer.begin("never-ended", track="t", at_ms=0.0)
        tracer.complete("done", 0.0, 1.0, track="t")
        document = to_chrome_trace(tracer.spans + [tracer.begin("open", at_ms=2.0)])
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert names == ["done"]

    def test_nonjson_attrs_are_coerced(self):
        tracer = Tracer(clock=ManualClock())
        tracer.complete("x", 0.0, 1.0, track="t", obj=object(), inf=float("inf"))
        document = to_chrome_trace(tracer.spans)
        json.dumps(document)  # must not raise


class TestJsonl:
    def test_round_trip_preserves_everything(self, tmp_path):
        spans = _sample_tracer().spans
        path = write_spans_jsonl(tmp_path / "spans.jsonl", spans)
        loaded = read_spans_jsonl(path)
        assert len(loaded) == len(spans)
        for original, restored in zip(spans, loaded):
            assert span_to_dict(original) == span_to_dict(restored)

    def test_span_dict_round_trip(self):
        span = _sample_tracer().spans[0]
        assert span_to_dict(span_from_dict(span_to_dict(span))) == span_to_dict(span)

    def test_empty_file_round_trips(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "empty.jsonl", [])
        assert read_spans_jsonl(path) == []


class TestSummary:
    def test_renders_all_instrument_kinds(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("sim.arrivals").inc(5)
        telemetry.metrics.gauge("sim.queue_depth").set(3)
        telemetry.metrics.histogram("sim.latency_ms").record_many([1.0, 2.0, 50.0])
        telemetry.tracer.spans.extend(_sample_tracer().spans)
        text = render_summary(telemetry)
        assert "sim.arrivals" in text
        assert "sim.queue_depth" in text
        assert "sim.latency_ms" in text
        assert "cluster" in text
        assert "p99" in text

    def test_empty_pipeline_renders_header_only(self):
        assert render_summary(Telemetry()).startswith("=== telemetry summary ===")
