"""Property tests for the log-bucketed streaming histogram.

The contract under test: ``percentile(q)`` agrees with the exact
order statistic (``numpy.quantile(..., method="inverted_cdf")``, the
same ``ceil(q*n)`` rank convention) to within the configured relative
error, for every quantile, across seeds and distributions; merging is
associative/commutative and equivalent to recording the concatenation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import LogHistogram


def _exact(data: np.ndarray, q: float) -> float:
    """The order statistic the histogram documents agreement with."""
    return float(np.quantile(data, q, method="inverted_cdf"))


def _draws(rng: np.random.Generator, kind: str, n: int) -> np.ndarray:
    if kind == "lognormal":
        return rng.lognormal(3.0, 1.2, size=n)
    if kind == "exponential":
        return rng.exponential(50.0, size=n)
    if kind == "bimodal":
        short = rng.uniform(1.0, 10.0, size=n)
        long_ = rng.uniform(200.0, 2000.0, size=n)
        return np.where(rng.random(n) < 0.2, long_, short)
    raise AssertionError(kind)


QUANTILES = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0]


class TestPercentileAccuracy:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("kind", ["lognormal", "exponential", "bimodal"])
    def test_matches_numpy_within_relative_error(self, seed, kind):
        rng = np.random.default_rng(seed)
        data = _draws(rng, kind, 2000)
        histogram = LogHistogram(relative_error=0.01)
        histogram.record_many(data)
        for q in QUANTILES:
            exact = _exact(data, q)
            approx = histogram.percentile(q)
            # documented bound, plus float rounding at bucket edges
            assert abs(approx - exact) <= exact * (0.01 * 1.001) + 1e-9, (
                f"q={q}: {approx} vs exact {exact}"
            )

    @pytest.mark.parametrize("eps", [0.001, 0.005, 0.02, 0.05])
    def test_bound_scales_with_configured_error(self, eps):
        rng = np.random.default_rng(99)
        data = rng.lognormal(2.0, 1.0, size=3000)
        histogram = LogHistogram(relative_error=eps)
        histogram.record_many(data)
        for q in QUANTILES:
            exact = _exact(data, q)
            assert abs(histogram.percentile(q) - exact) <= exact * (eps * 1.001) + 1e-9

    def test_extremes_stay_within_observed_min_max(self):
        histogram = LogHistogram()
        histogram.record_many([3.0, 7.0, 11.0])
        assert 3.0 <= histogram.percentile(0.0) <= 3.0 * 1.01
        assert 11.0 * 0.99 <= histogram.percentile(1.0) <= 11.0

    def test_exact_stats_are_exact(self):
        data = [1.5, 2.5, 100.0]
        histogram = LogHistogram()
        histogram.record_many(data)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(104.0)
        assert histogram.min == 1.5
        assert histogram.max == 100.0
        assert histogram.mean() == pytest.approx(104.0 / 3)


class TestMerge:
    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(5)
        a, b = rng.exponential(20.0, size=500), rng.lognormal(2.0, 1.0, size=700)
        ha, hb, hboth = LogHistogram(), LogHistogram(), LogHistogram()
        ha.record_many(a)
        hb.record_many(b)
        hboth.record_many(np.concatenate([a, b]))
        merged = ha.merge(hb)
        assert merged.count == hboth.count
        for q in QUANTILES:
            assert merged.percentile(q) == hboth.percentile(q)

    def test_merge_is_commutative_and_associative(self):
        rng = np.random.default_rng(6)
        hs = []
        for _ in range(3):
            h = LogHistogram()
            h.record_many(rng.exponential(30.0, size=300))
            hs.append(h)
        a, b, c = hs
        ab_c = a.merge(b).merge(c)
        a_bc = a.merge(b.merge(c))
        ba_c = b.merge(a).merge(c)
        for q in QUANTILES:
            assert ab_c.percentile(q) == a_bc.percentile(q) == ba_c.percentile(q)

    def test_merge_leaves_inputs_untouched(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(1.0)
        b.record(2.0)
        a.merge(b)
        assert a.count == 1 and b.count == 1

    def test_update_merges_in_place(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(1.0)
        b.record(2.0)
        a.update(b)
        assert a.count == 2
        assert a.max == 2.0

    def test_mismatched_relative_error_raises(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(relative_error=0.01).merge(LogHistogram(relative_error=0.02))


class TestEdgeCases:
    def test_empty_percentile_is_nan(self):
        histogram = LogHistogram()
        assert math.isnan(histogram.percentile(0.5))
        assert math.isnan(histogram.min)
        assert math.isnan(histogram.max)
        assert math.isnan(histogram.mean())

    def test_zero_goes_to_zero_bucket(self):
        histogram = LogHistogram()
        histogram.record(0.0)
        histogram.record(0.0)
        histogram.record(100.0)
        assert histogram.count == 3
        assert histogram.percentile(0.5) == 0.0
        assert histogram.min == 0.0

    def test_negative_value_raises(self):
        with pytest.raises(ConfigurationError):
            LogHistogram().record(-1.0)

    def test_bad_count_raises(self):
        with pytest.raises(ConfigurationError):
            LogHistogram().record(1.0, count=0)

    def test_bad_quantile_raises(self):
        histogram = LogHistogram()
        histogram.record(1.0)
        with pytest.raises(ConfigurationError):
            histogram.percentile(1.5)

    def test_bad_relative_error_raises(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(relative_error=0.0)
        with pytest.raises(ConfigurationError):
            LogHistogram(relative_error=1.0)

    def test_weighted_record(self):
        histogram = LogHistogram()
        histogram.record(5.0, count=10)
        assert histogram.count == 10
        assert histogram.sum == pytest.approx(50.0)
        assert histogram.percentile(0.5) == pytest.approx(5.0, rel=0.01)

    def test_memory_stays_bounded(self):
        # 100k samples over 6 decades should land in O(log range / eps)
        # buckets, not O(n).
        rng = np.random.default_rng(7)
        histogram = LogHistogram(relative_error=0.01)
        histogram.record_many(10.0 ** rng.uniform(-2, 4, size=100_000))
        assert histogram.count == 100_000
        assert histogram.bucket_count < 800

    def test_as_dict_snapshot(self):
        histogram = LogHistogram()
        histogram.record_many([1.0, 2.0, 3.0])
        snapshot = histogram.as_dict()
        assert snapshot["count"] == 3
        assert snapshot["relative_error"] == 0.01
        assert snapshot["p50"] == pytest.approx(2.0, rel=0.011)
