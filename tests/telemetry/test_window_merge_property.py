"""Property: window slices merge back to the cumulative histogram.

Whatever the value stream and wherever the window boundaries fall,
cutting a cumulative histogram into per-window slices
(:meth:`LogHistogram.slice_since`) and merging the slices reproduces
the cumulative bucket state *exactly* (bucket counts are integers) and
every quantile within the documented bounded relative error (slice
min/max are bucket bounds, so an extreme quantile may move by at most
one gamma factor).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.telemetry.histogram import LogHistogram

_EPS = 0.01
_GAMMA = (1 + _EPS) / (1 - _EPS)

_values = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)
_cuts = st.sets(st.integers(min_value=1, max_value=119), max_size=6)


@settings(max_examples=120, deadline=None)
@given(values=_values, cuts=_cuts)
def test_window_slices_merge_to_cumulative(values, cuts):
    cumulative = LogHistogram(relative_error=_EPS)
    boundaries = sorted(c for c in cuts if c < len(values))
    snapshots = [cumulative.copy()]
    for i, value in enumerate(values):
        cumulative.record(value)
        if i + 1 in boundaries:
            snapshots.append(cumulative.copy())
    snapshots.append(cumulative.copy())

    merged = LogHistogram(relative_error=_EPS)
    for earlier, later in zip(snapshots, snapshots[1:]):
        merged.update(later.slice_since(earlier))

    # Exact integer state: buckets, zero bucket, total count.
    (_, _, buckets, zero, count, total, _, _) = merged.state()
    (_, _, c_buckets, c_zero, c_count, c_total, _, _) = cumulative.state()
    assert buckets == c_buckets
    assert zero == c_zero
    assert count == c_count
    # Sums differ only by float residue of the subtract-then-add path.
    assert total == c_total or math.isclose(total, c_total, rel_tol=1e-9)

    # Quantiles: identical buckets, so only min/max clamping (bucket
    # bounds vs exact observations) can move a quantile — by at most
    # one gamma factor in each direction.
    for q in (0.01, 0.5, 0.9, 0.99):
        got = merged.percentile(q)
        want = cumulative.percentile(q)
        if want == 0.0:
            assert got == 0.0
        else:
            assert want / (_GAMMA * (1 + 1e-9)) <= got <= want * _GAMMA * (1 + 1e-9)
