"""Degraded-mode transitions observed through the live plane.

Satellite contract for the real-thread runtime: the server's
``degraded`` flag and the ``observe.event`` stream must agree — a
breach onset lands in the plane (and the tracer) as ``slo_breach``, a
recovery as ``slo_clear``, and the final flag matches the last such
event.  Timing here is wall-clock, so assertions are structural.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.observe import SLOMonitor, SLOTarget
from repro.observe.live import LivePlane, events_from_spans
from repro.runtime import LiveFMServer
from repro.telemetry import Telemetry

from tests.runtime.test_live_runtime import _request, _table


def _slo(threshold_ms: float) -> SLOMonitor:
    return SLOMonitor(
        SLOTarget(percentile=0.5, threshold_ms=threshold_ms),
        short_window_ms=60_000.0,
        long_window_ms=600_000.0,
        min_samples=3,
    )


def _plane(slo: SLOMonitor | None = None) -> LivePlane:
    # anchor_ms=None: the grid anchors at the first wall-clock
    # observation; feed_slo=False: the server feeds the monitor.
    return LivePlane(
        window_ms=50.0, capacity=4096, anchor_ms=None, slo=slo, feed_slo=False
    )


def _flush(plane: LivePlane) -> None:
    plane.flush(time.perf_counter() * 1000.0 + 1000.0)


class TestLiveSnapshots:
    def test_plane_sees_every_completion(self):
        plane = _plane()
        server = LiveFMServer(_table(), workers=2, live=plane)
        for rid in range(6):
            server.submit(_request(rid, 20.0))
        stats = server.drain(timeout_s=10.0)
        _flush(plane)
        assert sum(w.count for w in plane.windows()) == stats.completed == 6

    def test_components_decompose_the_latency(self):
        """queue_ms + execute_ms per completion is exactly the
        request's latency (same timestamps, subtracted once)."""
        plane = _plane()
        server = LiveFMServer(_table(), workers=2, live=plane)
        for rid in range(5):
            server.submit(_request(rid, 25.0))
        stats = server.drain(timeout_s=10.0)
        _flush(plane)
        totals = plane.attribution_totals()
        want = sum(stats.latencies_ms)
        assert totals["queue_ms"] + totals["execute_ms"] == pytest.approx(
            want, rel=1e-9
        )


class TestDegradedModeEvents:
    def test_breach_onset_becomes_an_event(self):
        slo = _slo(1.0)  # every completion violates
        plane = _plane(slo)
        server = LiveFMServer(_table(), workers=2, slo=slo, live=plane)
        for rid in range(6):
            server.submit(_request(rid, 30.0))
        server.drain(timeout_s=10.0)
        _flush(plane)
        breaches = [e for e in plane.events if e.kind == "slo_breach"]
        assert len(breaches) == server.slo_breaches == 1
        assert breaches[0].detail["burn_rate"] >= 1.0

    def test_degraded_flag_agrees_with_event_stream(self):
        slo = _slo(1.0)
        plane = _plane(slo)
        server = LiveFMServer(_table(), workers=2, slo=slo, live=plane)
        for rid in range(6):
            server.submit(_request(rid, 30.0))
        server.drain(timeout_s=10.0)
        _flush(plane)
        transitions = [
            e for e in plane.events if e.kind in ("slo_breach", "slo_clear")
        ]
        assert transitions, "a breach onset must produce an event"
        assert server.degraded == (transitions[-1].kind == "slo_breach")
        # The plane reads the shared monitor at window close: windows
        # closed after the onset carry the breached column.
        onset_window = transitions[0].window
        later = [w for w in plane.windows() if w.index >= onset_window]
        assert any(w.breached for w in later)

    def test_healthy_run_emits_no_transitions(self):
        slo = _slo(10_000.0)
        plane = _plane(slo)
        server = LiveFMServer(_table(), workers=2, slo=slo, live=plane)
        for rid in range(4):
            server.submit(_request(rid, 20.0))
        server.drain(timeout_s=10.0)
        _flush(plane)
        assert not server.degraded
        kinds = {e.kind for e in plane.events}
        assert "slo_breach" not in kinds
        assert not any(w.breached for w in plane.windows())

    def test_breach_event_ordering_matches_tracer_stream(self):
        """The same onset lands in the plane and in the span stream,
        and no completion observed before it breaches its window."""
        telemetry = Telemetry()
        slo = _slo(1.0)
        plane = _plane(slo)
        server = LiveFMServer(
            _table(), workers=2, telemetry=telemetry, slo=slo, live=plane
        )
        for rid in range(6):
            server.submit(_request(rid, 30.0))
        server.drain(timeout_s=10.0)
        _flush(plane)
        traced = [
            e
            for e in events_from_spans(telemetry.tracer.spans)
            if e.kind in ("slo_breach", "slo_clear")
        ]
        live = [
            e for e in plane.events if e.kind in ("slo_breach", "slo_clear")
        ]
        assert [e.kind for e in traced] == [e.kind for e in live]
        assert [e.at_ms for e in traced] == pytest.approx(
            [e.at_ms for e in live]
        )


class TestValidation:
    def test_plane_must_not_feed_a_shared_monitor(self):
        slo = _slo(1.0)
        plane = LivePlane(window_ms=50.0, anchor_ms=None, slo=slo)  # feed_slo on
        with pytest.raises(ConfigurationError):
            LiveFMServer(_table(), workers=2, slo=slo, live=plane)

    def test_plane_without_monitor_is_fine(self):
        server = LiveFMServer(_table(), workers=2, live=_plane())
        server.submit(_request(0, 10.0))
        assert server.drain(timeout_s=5.0).completed == 1
