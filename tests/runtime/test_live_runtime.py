"""Tests for the live (real-thread) FM runtime.

Timing assertions are deliberately loose — these run on shared CI
hardware — but the *structural* facts (degrees climbed, admissions
ordered, everything completed) are asserted exactly.
"""

from __future__ import annotations

import time

import pytest

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.table import IntervalTable
from repro.errors import ConfigurationError
from repro.runtime import LiveFMServer, LiveRequest, SleepSlice, make_slices


def _table(step_ms: float = 60.0, capacity_rows: int = 4) -> IntervalTable:
    """Start sequential, d2 after ``step_ms``, d4 after ``2 * step_ms``;
    last row is e1."""
    climbing = Schedule(
        [
            ScheduleStep(0.0, 1),
            ScheduleStep(step_ms, 2),
            ScheduleStep(2 * step_ms, 4),
        ]
    )
    rows = [climbing] * capacity_rows
    rows.append(Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True))
    return IntervalTable(rows)


def _request(rid: int, total_ms: float, slice_ms: float = 10.0) -> LiveRequest:
    return LiveRequest(rid, make_slices(total_ms, slice_ms))


class TestWorkUnits:
    def test_make_slices_conserves_work(self):
        slices = make_slices(95.0, 10.0)
        assert sum(s.duration_ms for s in slices) == pytest.approx(95.0)
        assert len(slices) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SleepSlice(0.0)
        with pytest.raises(ConfigurationError):
            make_slices(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            LiveRequest(0, [])

    def test_degree_budget_limits_handout(self):
        request = _request(0, 50.0, slice_ms=10.0)
        request.degree = 2
        assert request.take_slice() is not None
        assert request.take_slice() is not None
        assert request.take_slice() is None  # budget reached
        request.complete_slice()
        assert request.take_slice() is not None

    def test_completion_latch(self):
        request = _request(0, 10.0, slice_ms=10.0)
        request.mark_started()
        assert request.take_slice() is not None
        assert request.complete_slice()
        assert request.done.is_set()
        assert request.latency_ms >= 0.0


class TestLiveServer:
    def test_single_short_request_runs_sequentially(self):
        server = LiveFMServer(_table(step_ms=200.0), workers=4, quantum_ms=5.0)
        request = _request(0, 40.0)
        server.submit(request)
        stats = server.drain(timeout_s=10.0)
        assert stats.completed == 1
        assert stats.max_degrees[0] == 1  # finished before the first step
        assert stats.latencies_ms[0] >= 40.0  # cannot beat its own work

    def test_long_request_climbs_and_speeds_up(self):
        """A 360 ms request under a 60 ms-step table must reach degree
        >= 2 and finish well before fully-sequential time."""
        server = LiveFMServer(_table(step_ms=60.0), workers=6, quantum_ms=5.0)
        request = _request(0, 360.0, slice_ms=10.0)
        server.submit(request)
        stats = server.drain(timeout_s=15.0)
        assert stats.max_degrees[0] >= 2
        # Sequential would be ~360 ms + overhead; parallel tail phases
        # must land clearly below (generous bound for slow CI).
        assert stats.latencies_ms[0] < 330.0

    def test_all_requests_complete_under_load(self):
        server = LiveFMServer(_table(), workers=4, quantum_ms=5.0)
        requests = [_request(i, 30.0 + 10.0 * (i % 3)) for i in range(12)]
        for request in requests:
            server.submit(request)
            time.sleep(0.002)
        stats = server.drain(timeout_s=20.0)
        assert stats.completed == 12
        assert stats.tail_latency_ms(1.0) >= stats.mean_latency_ms()

    def test_e1_queueing_bounds_concurrency(self):
        """With capacity 2, the 3rd simultaneous arrival waits for an
        exit, so its latency includes queueing."""
        table = _table(step_ms=500.0, capacity_rows=2)
        server = LiveFMServer(table, workers=8, quantum_ms=5.0)
        requests = [_request(i, 80.0) for i in range(3)]
        for request in requests:
            server.submit(request)
        stats = server.drain(timeout_s=10.0)
        assert stats.completed == 3
        latencies = sorted(stats.latencies_ms)
        # The queued request waited for a full 80 ms request to finish.
        assert latencies[-1] > latencies[0] + 40.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LiveFMServer(_table(), workers=0)
        with pytest.raises(ConfigurationError):
            LiveFMServer(_table(), workers=2, quantum_ms=0.0)

    def test_shutdown_is_idempotent(self):
        server = LiveFMServer(_table(), workers=2)
        server.submit(_request(0, 20.0))
        server.drain(timeout_s=5.0)
        server.shutdown()
        server.shutdown()


class TestEmptyDrain:
    def test_drain_with_no_requests_returns_nan_stats(self):
        """Regression: draining an idle server used to crash computing
        latency statistics over an empty sample (IndexError in the
        percentile, ZeroDivisionError in the mean)."""
        import math

        server = LiveFMServer(_table(), workers=2)
        stats = server.drain(timeout_s=5.0)
        assert stats.completed == 0
        assert math.isnan(stats.tail_latency_ms(0.99))
        assert math.isnan(stats.mean_latency_ms())

    def test_all_shed_drain_returns_nan_stats(self):
        """The empty-drain path with *activity*: every arrival shed,
        zero completions.  Stats must follow the monitoring-surface
        contract (nan, never raise) — see telemetry/histogram.py."""
        import math

        from repro.errors import RequestShedError

        table = _table(capacity_rows=0)  # lone e1 row: everyone queues
        server = LiveFMServer(table, workers=2, max_queue=0)
        for rid in range(3):
            with pytest.raises(RequestShedError):
                server.submit(_request(rid, 20.0))
        stats = server.drain(timeout_s=5.0)
        assert stats.completed == 0
        assert stats.shed == 3
        assert math.isnan(stats.tail_latency_ms(0.99))
        assert math.isnan(stats.mean_latency_ms())


class TestLiveSLO:
    def _slo(self, threshold_ms: float):
        from repro.observe import SLOMonitor, SLOTarget

        return SLOMonitor(
            SLOTarget(percentile=0.5, threshold_ms=threshold_ms),
            short_window_ms=60_000.0,
            long_window_ms=600_000.0,
            min_samples=3,
        )

    def test_sustained_violations_degrade_server(self):
        """Every completion blows a 1 ms target: the monitor breaches,
        the server reports degraded and counts one breach onset."""
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        server = LiveFMServer(
            _table(), workers=2, telemetry=telemetry, slo=self._slo(1.0)
        )
        for rid in range(6):
            server.submit(_request(rid, 30.0))
        server.drain(timeout_s=10.0)
        assert server.degraded
        assert server.slo_breaches == 1  # onsets, not per-completion
        gauges = telemetry.metrics.gauges
        assert gauges["slo.breached"].value == 1.0
        assert gauges["slo.percentile_ms"].value > 1.0
        assert telemetry.metrics.counter("runtime.slo_breaches").value == 1

    def test_healthy_server_is_not_degraded(self):
        server = LiveFMServer(_table(), workers=2, slo=self._slo(10_000.0))
        for rid in range(4):
            server.submit(_request(rid, 20.0))
        server.drain(timeout_s=10.0)
        assert not server.degraded
        assert server.slo_breaches == 0

    def test_slo_without_telemetry_uses_wall_clock(self):
        """The monitor works without a tracer clock (perf_counter ms)."""
        server = LiveFMServer(_table(), workers=2, slo=self._slo(1.0))
        for rid in range(4):
            server.submit(_request(rid, 25.0))
        server.drain(timeout_s=10.0)
        assert server.degraded


class TestLiveShedding:
    def test_max_queue_sheds_with_fail_fast_error(self):
        """With capacity 1 and max_queue 0, the second concurrent
        arrival is rejected immediately instead of queueing."""
        from repro.errors import RequestShedError

        table = _table(step_ms=500.0, capacity_rows=1)
        server = LiveFMServer(table, workers=4, quantum_ms=5.0, max_queue=0)
        server.submit(_request(0, 120.0))
        time.sleep(0.02)  # ensure request 0 is running, not queued
        with pytest.raises(RequestShedError):
            server.submit(_request(1, 120.0))
        stats = server.drain(timeout_s=10.0)
        assert stats.completed == 1
        assert stats.shed == 1
        assert stats.deadline_sheds == 0

    def test_deadline_budget_sheds_stale_queued_requests(self):
        """A queued request whose wait exceeds the deadline budget is
        shed by the scheduler thread, and the server still drains."""
        table = _table(step_ms=500.0, capacity_rows=1)
        server = LiveFMServer(
            table, workers=4, quantum_ms=5.0, deadline_ms=30.0
        )
        server.submit(_request(0, 150.0))
        time.sleep(0.02)
        server.submit(_request(1, 50.0))  # queues behind the 150 ms run
        stats = server.drain(timeout_s=10.0)
        assert stats.completed == 1
        assert stats.shed == 1
        assert stats.deadline_sheds == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LiveFMServer(_table(), workers=2, max_queue=-1)
        with pytest.raises(ConfigurationError):
            LiveFMServer(_table(), workers=2, deadline_ms=0.0)


class TestLiveReplication:
    """LiveFMServer + AdaptiveReplicationController share one SLO signal."""

    def _controller(self, threshold_ms: float):
        from repro.cluster.adaptive import (
            AdaptiveReplicationController,
            ControllerConfig,
        )
        from repro.observe import SLOMonitor, SLOTarget

        slo = SLOMonitor(
            SLOTarget(percentile=0.9, threshold_ms=threshold_ms),
            short_window_ms=60_000.0,
            long_window_ms=600_000.0,
            min_samples=3,
        )
        return AdaptiveReplicationController(
            ControllerConfig(window_ms=10_000.0, cores=2), slo=slo
        )

    def test_distinct_monitors_are_rejected(self):
        from repro.observe import SLOMonitor, SLOTarget

        other = SLOMonitor(SLOTarget(percentile=0.5, threshold_ms=100.0))
        with pytest.raises(ConfigurationError):
            LiveFMServer(
                _table(), workers=2,
                slo=other, replication=self._controller(100.0),
            )

    def test_controller_monitor_is_adopted(self):
        controller = self._controller(10_000.0)
        server = LiveFMServer(_table(), workers=2, replication=controller)
        assert server.slo is controller.slo
        assert server.replication_mode == "steady"
        server.shutdown()

    def test_burning_error_budget_drives_brownout_and_degraded(self):
        """Every completion blows a 1 ms p90 target: the shared monitor
        burns at 10x budget, the controller browns out at the drain
        flush, and the server reports degraded without an SLO breach
        counter of its own doing the work."""
        controller = self._controller(1.0)
        server = LiveFMServer(_table(), workers=2, replication=controller)
        for rid in range(6):
            server.submit(_request(rid, 30.0))
        server.drain(timeout_s=10.0)
        assert controller.windows_observed >= 1
        assert server.replication_mode == "brownout"
        assert server.degraded
        assert not controller.decision.redundancy_enabled

    def test_healthy_server_keeps_redundancy_available(self):
        controller = self._controller(10_000.0)
        server = LiveFMServer(_table(), workers=2, replication=controller)
        for rid in range(4):
            server.submit(_request(rid, 20.0))
        server.drain(timeout_s=10.0)
        assert not server.degraded
        assert server.replication_mode in ("eager", "steady")
        assert controller.slo.status().long_count == 4
