"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments.figures import ALL_EXPERIMENTS


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in ALL_EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_every_experiment_accepts_trace_flag(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--trace", "out.json"])
            assert args.experiment == name
            assert args.trace == "out.json"

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "--trace" in capsys.readouterr().out

    def test_accepts_all_keyword(self):
        args = build_parser().parse_args(["all", "--scale", "tiny"])
        assert args.experiment == "all"
        assert args.scale == "tiny"

    def test_accepts_robustness_experiment(self):
        args = build_parser().parse_args(["robustness"])
        assert args.experiment == "robustness"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "huge"])


class TestMain:
    def test_runs_fig5(self, capsys):
        assert main(["fig5", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "interval table" in out

    def test_runs_thm1(self, capsys):
        assert main(["thm1", "--scale", "tiny"]) == 0
        assert "few-to-many" in capsys.readouterr().out

    def test_runs_telemetry_experiment(self, capsys):
        assert main(["telemetry", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_trace_writes_chrome_json_with_layer_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["telemetry", "--scale", "tiny", "--trace", str(trace_path)]) == 0
        assert "spans" in capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        tracks = {
            event["args"]["name"]
            for event in events
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        # the acceptance criterion: sim, search, AND cluster spans in
        # one CLI-produced trace file
        assert {"sim", "search", "cluster"} <= tracks
        assert any(event.get("ph") == "X" for event in events)
        assert document["otherData"]["metrics"]["counters"]

    def test_trace_flag_on_plain_experiment(self, tmp_path):
        trace_path = tmp_path / "fig5.json"
        assert main(["fig5", "--scale", "tiny", "--trace", str(trace_path)]) == 0
        json.loads(trace_path.read_text())  # valid JSON even if few spans


class TestDiffPlane:
    """The `repro diff` dispatch and the `--ledger` flag (DESIGN.md §15)."""

    def test_ledger_flag_persists_offered_entries(self, tmp_path, capsys):
        from repro.observe.ledger import RunLedger

        runs = tmp_path / "runs"
        assert (
            main(["tail-attribution", "--scale", "tiny", "--ledger", str(runs)])
            == 0
        )
        out = capsys.readouterr().out
        assert "[ledger:" in out
        entries = RunLedger(runs).entries()
        # One entry per (policy, load point): 3 policies x 3 loads.
        assert len(entries) == 9
        assert all(e.run_id for e in entries)

    def test_diff_subcommand_end_to_end(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert (
            main(["run-diff", "--scale", "tiny", "--ledger", str(runs)]) == 0
        )
        capsys.readouterr()
        assert main(["diff", "FM@45", "FIX-3@45", "--runs", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "repro diff" in out
        assert "verdict:" in out

    def test_diff_subcommand_bad_ref_exits_2(self, tmp_path, capsys):
        assert main(["diff", "a", "b", "--runs", str(tmp_path / "none")]) == 2
        assert "repro diff:" in capsys.readouterr().err

    def test_ledger_entries_identical_across_workers(self, tmp_path):
        from repro.observe.ledger import RunLedger

        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        assert main(["run-diff", "--scale", "tiny", "--ledger", str(serial)]) == 0
        assert (
            main(
                ["run-diff", "--scale", "tiny", "--workers", "2",
                 "--ledger", str(pooled)]
            )
            == 0
        )
        a = [e.to_dict() for e in RunLedger(serial).entries()]
        b = [e.to_dict() for e in RunLedger(pooled).entries()]
        assert a == b
