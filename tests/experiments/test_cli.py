"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.figures import ALL_EXPERIMENTS


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in ALL_EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_accepts_all_keyword(self):
        args = build_parser().parse_args(["all", "--scale", "tiny"])
        assert args.experiment == "all"
        assert args.scale == "tiny"

    def test_accepts_robustness_experiment(self):
        args = build_parser().parse_args(["robustness"])
        assert args.experiment == "robustness"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "huge"])


class TestMain:
    def test_runs_fig5(self, capsys):
        assert main(["fig5", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "interval table" in out

    def test_runs_thm1(self, capsys):
        assert main(["thm1", "--scale", "tiny"]) == 0
        assert "few-to-many" in capsys.readouterr().out
