"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments.figures import ALL_EXPERIMENTS


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in ALL_EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_every_experiment_accepts_trace_flag(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--trace", "out.json"])
            assert args.experiment == name
            assert args.trace == "out.json"

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "--trace" in capsys.readouterr().out

    def test_accepts_all_keyword(self):
        args = build_parser().parse_args(["all", "--scale", "tiny"])
        assert args.experiment == "all"
        assert args.scale == "tiny"

    def test_accepts_robustness_experiment(self):
        args = build_parser().parse_args(["robustness"])
        assert args.experiment == "robustness"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "huge"])


class TestMain:
    def test_runs_fig5(self, capsys):
        assert main(["fig5", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "interval table" in out

    def test_runs_thm1(self, capsys):
        assert main(["thm1", "--scale", "tiny"]) == 0
        assert "few-to-many" in capsys.readouterr().out

    def test_runs_telemetry_experiment(self, capsys):
        assert main(["telemetry", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_trace_writes_chrome_json_with_layer_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["telemetry", "--scale", "tiny", "--trace", str(trace_path)]) == 0
        assert "spans" in capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        tracks = {
            event["args"]["name"]
            for event in events
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        # the acceptance criterion: sim, search, AND cluster spans in
        # one CLI-produced trace file
        assert {"sim", "search", "cluster"} <= tracks
        assert any(event.get("ph") == "X" for event in events)
        assert document["otherData"]["metrics"]["counters"]

    def test_trace_flag_on_plain_experiment(self, tmp_path):
        trace_path = tmp_path / "fig5.json"
        assert main(["fig5", "--scale", "tiny", "--trace", str(trace_path)]) == 0
        json.loads(trace_path.read_text())  # valid JSON even if few spans
