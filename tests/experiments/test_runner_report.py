"""Tests for the experiment runner and report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import FigureResult, TableData, format_cell, render_table
from repro.experiments.runner import run_policy, run_sweep
from repro.schedulers import FixedScheduler, SequentialScheduler


class TestRunPolicy:
    def test_basic_run(self, tiny_workload):
        result = run_policy(
            SequentialScheduler(), tiny_workload, rps=40.0, cores=4,
            num_requests=100, seed=1,
        )
        assert len(result) == 100
        assert result.tail_latency_ms() > 0

    def test_seed_controls_trace(self, tiny_workload):
        a = run_policy(SequentialScheduler(), tiny_workload, rps=40.0, cores=4,
                       num_requests=50, seed=1)
        b = run_policy(SequentialScheduler(), tiny_workload, rps=40.0, cores=4,
                       num_requests=50, seed=1)
        c = run_policy(SequentialScheduler(), tiny_workload, rps=40.0, cores=4,
                       num_requests=50, seed=2)
        assert a.tail_latency_ms() == b.tail_latency_ms()
        assert a.tail_latency_ms() != c.tail_latency_ms()


class TestRunSweep:
    def test_sweep_structure(self, tiny_workload):
        sweep = run_sweep(
            [SequentialScheduler(), FixedScheduler(2)],
            tiny_workload,
            rps_values=[30.0, 60.0],
            cores=4,
            num_requests=80,
        )
        assert sweep.policies() == ["SEQ", "FIX-2"]
        assert len(sweep["SEQ"].tail_points()) == 2
        assert sweep["SEQ"].rps_values == [30.0, 60.0]

    def test_policies_see_identical_traces(self, tiny_workload):
        """Paired comparison: at zero contention both policies should
        see the same arrival times (identical seeds per point)."""
        sweep = run_sweep(
            {"a": SequentialScheduler(), "b": SequentialScheduler()},
            tiny_workload,
            rps_values=[20.0],
            cores=8,
            num_requests=60,
        )
        assert sweep["a"].tail_ms == sweep["b"].tail_ms

    def test_improvement(self, tiny_workload):
        sweep = run_sweep(
            [SequentialScheduler(), FixedScheduler(4)],
            tiny_workload,
            rps_values=[30.0],
            cores=8,
            num_requests=150,
        )
        gain = sweep.improvement("SEQ", "FIX-4", 30.0)
        assert gain > 0  # parallelism wins at low load

    def test_keep_results(self, tiny_workload):
        sweep = run_sweep(
            [SequentialScheduler()], tiny_workload, rps_values=[30.0],
            cores=4, num_requests=50, keep_results=True,
        )
        assert len(sweep["SEQ"].results[0]) == 1

    def test_duplicate_names_rejected(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            run_sweep(
                [SequentialScheduler(), SequentialScheduler()],
                tiny_workload, rps_values=[30.0], cores=4, num_requests=50,
            )

    def test_repeats_average(self, tiny_workload):
        sweep = run_sweep(
            [SequentialScheduler()], tiny_workload, rps_values=[30.0],
            cores=4, num_requests=50, repeats=2,
        )
        assert len(sweep["SEQ"].tail_ms) == 1


class TestReport:
    def test_format_cell(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(12345.6) == "12346"
        assert format_cell(0.0) == "0"
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"
        assert format_cell(float("nan")) == "nan"

    def test_render_table_alignment(self):
        text = render_table(["a", "metric"], [[1, 2.5], [30, 40.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_figure_result_render(self):
        result = FigureResult("figX", "A title")
        result.add_table("panel", ["x", "y"], [[1, 2.0]])
        result.add_note("hello")
        text = result.render()
        assert "figX" in text
        assert "panel" in text
        assert "note: hello" in text

    def test_table_data_render(self):
        table = TableData("cap", ["c"], [[1]])
        assert table.render().startswith("cap\n")
