"""The live-tail experiment: deterministic early detection.

Pins the acceptance criterion: the overload-flip onset is flagged by
the changepoint detector at a stable window index, strictly before the
SLO monitor's breach floor — in-process, across repeat runs, and
across worker processes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.config import TINY
from repro.experiments.live_tail import (
    LIVE_TAIL,
    experiment_live_tail,
    onset_signature,
    run_live_tail,
)


def _signature_in_subprocess(_: int) -> tuple:
    """Module-level so worker processes can import it by reference."""
    plane, _result = run_live_tail(TINY)
    return onset_signature(plane)


@pytest.fixture(scope="module")
def tiny_run():
    return run_live_tail(TINY)


class TestOnset:
    def test_detector_flags_before_breach_floor(self, tiny_run):
        plane, _ = tiny_run
        fault_window, flagged, breach_floor = onset_signature(plane)
        assert fault_window is not None
        assert flagged is not None
        assert breach_floor is not None
        assert fault_window <= flagged < breach_floor

    def test_faults_actually_fired(self, tiny_run):
        _, result = tiny_run
        stats = result.fault_stats
        assert stats.faults_fired > 0
        assert stats.core_faults_applied >= 1

    def test_signature_is_stable_in_process(self, tiny_run):
        plane, _ = tiny_run
        again, _ = run_live_tail(TINY)
        assert onset_signature(again) == onset_signature(plane)

    def test_signature_is_stable_across_processes(self, tiny_run):
        plane, _ = tiny_run
        want = onset_signature(plane)
        with ProcessPoolExecutor(max_workers=2) as pool:
            got = list(pool.map(_signature_in_subprocess, range(2)))
        assert got == [want, want]


class TestFigure:
    def test_figure_reports_the_lead(self, tiny_run):
        result = experiment_live_tail(TINY)
        assert result.figure_id == "live-tail"
        notes = "\n".join(result.notes)
        assert "changepoint" in notes
        assert "before the SLO breach floor" in notes
        (table,) = result.tables
        assert table.columns[0] == "window"
        assert any(row[5] == "yes" for row in table.rows)  # a breached window
        assert any("fault" in row[6] for row in table.rows)

    def test_registered_in_cli(self):
        from repro.cli import EXPERIMENTS

        assert "live-tail" in LIVE_TAIL
        assert EXPERIMENTS["live-tail"] is experiment_live_tail
