"""The replication-phase experiment and the controller determinism pin.

The determinism tests are the regression the adaptive controller is
held to: the same seed plus the same canned fault scenario must replay
a bit-identical mode-transition signature — across repeated in-process
runs *and* across worker processes (the ``--workers N`` sweep path
runs simulations in subprocesses; controller behavior must not depend
on which process hosts the run).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cluster.adaptive import AdaptiveReplicationController, ControllerConfig
from repro.cluster.hedging import HedgePolicy
from repro.errors import ConfigurationError
from repro.experiments.config import TINY
from repro.experiments.replication_phase import (
    SATURATION_RPS,
    _controller,
    _phase_point,
    experiment_replication_phase,
)
from repro.faults.scenarios import overload_flip
from repro.schedulers import FMScheduler
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess


def _flip_signature() -> tuple[tuple, ...]:
    """One overload-flip run at TINY scale -> transition signature.

    Module-level so worker processes can import it by reference.
    """
    rps = 0.40 * SATURATION_RPS
    num_queries = TINY.num_requests * 2
    scenario = overload_flip(
        seed=131,
        horizon_ms=num_queries / rps * 1000.0,
        cores_lost=bing_mod.CORES - 2,
        stall_ms=2 * bing_mod.QUANTUM_MS,
    )
    controller = _controller()
    run = _phase_point(
        TINY, rps, controller=controller, fault_plan_factory=scenario
    )
    assert run.controller is controller
    assert run.mode_transitions == controller.transition_signature()
    return controller.transition_signature()


class TestControllerWiring:
    def test_controller_excludes_static_policies(self, tiny_workload):
        from repro.cluster.simulation import simulate_cluster_robust
        from repro.experiments.tables import bing_table

        with pytest.raises(ConfigurationError):
            simulate_cluster_robust(
                scheduler_factory=lambda: FMScheduler(bing_table(TINY)),
                workload=tiny_workload,
                num_servers=2,
                num_queries=4,
                process=PoissonProcess(100.0),
                cores=4,
                controller=AdaptiveReplicationController(
                    ControllerConfig(cores=4)
                ),
                hedge=HedgePolicy(delay_percentile=0.95),
            )

    def test_controller_capacity_must_match_servers(self, tiny_workload):
        from repro.cluster.simulation import simulate_cluster_robust
        from repro.experiments.tables import bing_table

        with pytest.raises(ConfigurationError):
            simulate_cluster_robust(
                scheduler_factory=lambda: FMScheduler(bing_table(TINY)),
                workload=tiny_workload,
                num_servers=2,
                num_queries=4,
                process=PoissonProcess(100.0),
                cores=4,
                controller=AdaptiveReplicationController(
                    ControllerConfig(cores=12)  # != 4 simulated cores
                ),
            )

    def test_cli_registration(self):
        from repro.cli import EXPERIMENTS

        assert "replication-phase" in EXPERIMENTS


class TestFlipDeterminism:
    def test_replay_is_bit_identical_across_runs(self):
        first = _flip_signature()
        assert first  # the flip actually transitions
        # The scenario must exercise the recovery path end to end:
        # at least one brownout entry and at least one recovery edge.
        assert any(t[3] == "brownout" for t in first)
        assert any(t[4] == "recovery" for t in first)
        assert _flip_signature() == first

    def test_replay_is_bit_identical_across_worker_processes(self):
        in_process = _flip_signature()
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_flip_signature) for _ in range(2)]
            from_workers = [f.result() for f in futures]
        assert from_workers[0] == from_workers[1] == in_process


@pytest.mark.slow
class TestExperimentSmoke:
    def test_structure_and_acceptance(self):
        result = experiment_replication_phase(TINY)
        # Phase diagram, the past-the-knee diff panel (DESIGN.md §15),
        # and the flip timeline.
        assert len(result.tables) == 3
        assert result.tables[1].caption.startswith("repro diff")
        assert len(result.notes) >= 3
        # Every (policy, rho) run plus the flip run is offered for
        # --ledger persistence.
        assert any(
            e.card.name.startswith("repl:adaptive@") for e in result.entries
        )
        assert any(
            e.card.name == "repl:flip-adaptive@0.4" for e in result.entries
        )

        phase_rows = result.tables[0].rows
        adaptive_rows = [r for r in phase_rows if r[1] == "adaptive"]
        assert len(adaptive_rows) == 4  # one per load point
        # Acceptance bound: adaptive tracks the best static policy at
        # every load point (within 10%), with a stable mode sequence
        # (<= a handful of transitions) at the highest load.
        for row in adaptive_rows:
            assert row[5] <= 1.10
        assert adaptive_rows[-1][6] <= 3

        transitions = result.tables[2].rows
        assert transitions and transitions[0][2] != "(no transition)"
        assert "brownout" in result.tables[2].caption
