"""The hetero-energy experiment: frontier claim, wiring, determinism."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import TINY
from repro.experiments.hetero_energy import (
    CORES,
    RPS_SWEEP,
    big_little_topology,
    experiment_hetero_energy,
    hetero_policies,
    homogeneous_topology,
    run_hetero_sweep,
)
from repro.parallel import default_workers


class TestWiring:
    def test_topologies(self):
        homo = homogeneous_topology()
        assert homo.total_cores == CORES
        assert homo.is_single_pool
        bl = big_little_topology()
        assert bl.total_cores == CORES
        assert bl.equivalent_capacity() == 20.0
        assert bl.index_of("big") == 0

    def test_policies_are_table_tuned_to_capacity(self):
        policies = hetero_policies(TINY, big_little_topology())
        assert set(policies) == {"FIX-3", "FM", "Hurry-up", "EA-FM"}
        # The big/little box has 20 equivalent cores; FM's table must be
        # built for that capacity, not the 16 physical cores.
        assert policies["FM"].table.metadata.target_parallelism == 20.0
        assert policies["EA-FM"].table.metadata.target_parallelism == 20.0
        homo = hetero_policies(TINY, homogeneous_topology())
        assert homo["FM"].table.metadata.target_parallelism == 16.0

    def test_cli_registration(self):
        from repro.cli import EXPERIMENTS

        assert "hetero-energy" in EXPERIMENTS


@pytest.fixture(scope="module")
def tiny_figure():
    return experiment_hetero_energy(TINY)


class TestExperiment:
    def test_structure(self, tiny_figure):
        assert tiny_figure.figure_id == "hetero-energy"
        # One panel per topology, the energy decomposition, and the
        # EA-FM vs FIX-3 diff panel (DESIGN.md §15).
        assert len(tiny_figure.tables) == 4
        assert tiny_figure.tables[3].caption.startswith("repro diff")
        assert len(tiny_figure.notes) >= 4
        # Ledger entries offered for --ledger persistence: one per
        # big/little policy at the decomposition load.
        names = {entry.card.name for entry in tiny_figure.entries}
        assert {"hetero:EA-FM@250", "hetero:FIX-3@250"} <= names
        for table in tiny_figure.tables[:2]:
            assert len(table.rows) == len(RPS_SWEEP) * 4

    def test_energy_columns_are_finite(self, tiny_figure):
        for table in tiny_figure.tables[:2]:
            jpq_col = table.columns.index("J/query")
            for row in table.rows:
                assert math.isfinite(row[jpq_col])

    def test_frontier_claim_holds(self, tiny_figure):
        """The acceptance gate: EA-FM dominates FIX-3 (lower p99 AND
        lower J/query) at >= 1 load point on the big/little topology."""
        assert any(
            "strictly dominates FIX-3" in note for note in tiny_figure.notes
        )

    def test_decomposition_adds_up(self, tiny_figure):
        decomp = tiny_figure.tables[2]
        total_col = decomp.columns.index("total J")
        for row in decomp.rows:
            parts = sum(row[1:total_col])
            assert parts == pytest.approx(row[total_col], rel=1e-9)


class TestDeterminism:
    def test_sweep_is_identical_across_worker_counts(self):
        topology = big_little_topology()
        with default_workers(1):
            serial = run_hetero_sweep(TINY, topology)
        with default_workers(2):
            parallel = run_hetero_sweep(TINY, topology)
        assert serial.policies() == parallel.policies()
        for name in serial.policies():
            assert serial[name].tail_ms == parallel[name].tail_ms
            assert serial[name].mean_ms == parallel[name].mean_ms
            for kept_s, kept_p in zip(serial[name].results, parallel[name].results):
                assert [r.energy.total_j for r in kept_s] == [
                    r.energy.total_j for r in kept_p
                ]

    def test_homogeneous_panel_collapses_to_fm(self):
        """On one pool EA-FM *is* FM — same bits, same bill."""
        sweep = run_hetero_sweep(TINY, homogeneous_topology())
        assert sweep["EA-FM"].tail_ms == sweep["FM"].tail_ms
        for kept_fm, kept_ea in zip(
            sweep["FM"].results, sweep["EA-FM"].results
        ):
            assert [r.energy.total_j for r in kept_fm] == [
                r.energy.total_j for r in kept_ea
            ]
