"""Regression tests for the parallel-runner bugs fixed alongside the
mega-sweep work: the empty-grid ``Pool(processes=0)`` crash, the serial
fallback clobbering the worker-process spec global, and ambient
``workers=0`` resolving "all CPUs" at set time instead of use time."""

from __future__ import annotations

import os
from unittest import mock

import pytest

import repro.parallel as parallel_mod
from repro.errors import ConfigurationError
from repro.parallel import (
    default_workers,
    get_default_workers,
    resolve_workers,
    run_sweep_parallel,
    set_default_workers,
)
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.schedulers import FixedScheduler, SequentialScheduler
from repro.workloads.synthetic import DemandDistribution
from repro.workloads.workload import Workload


def _workload():
    return Workload(
        name="bugfix-test",
        sampler=DemandDistribution([(1.0, 3.0, 0.6)], floor_ms=1.0),
        speedup_model=UniformSpeedupModel(TabulatedSpeedup([1.0, 1.8, 2.4, 2.9])),
        max_degree=4,
    )


class TestEmptyGridValidation:
    """An empty scheduler or rps axis used to reach
    ``Pool(processes=0)`` and die with a bare ValueError from
    multiprocessing; now it's a ConfigurationError naming the axis."""

    def test_no_schedulers_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one scheduler"):
            run_sweep_parallel({}, _workload(), [50.0], cores=4, workers=2)

    def test_no_rps_values_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one rps"):
            run_sweep_parallel(
                {"SEQ": SequentialScheduler()}, _workload(), [], cores=4, workers=2
            )

    def test_rejected_before_any_pool_is_created(self):
        with mock.patch.object(parallel_mod, "_pool_context") as ctx:
            with pytest.raises(ConfigurationError):
                run_sweep_parallel({}, _workload(), [50.0], cores=4, workers=2)
        ctx.assert_not_called()

    def test_empty_grid_also_rejected_serially(self):
        # The validation is grid-shape, not pool-size: workers=1 too.
        with pytest.raises(ConfigurationError, match="at least one scheduler"):
            run_sweep_parallel({}, _workload(), [50.0], cores=4, workers=1)


class TestSerialFallbackSpecIsolation:
    """The serial (workers=1) path used to write the module-global
    ``_SPEC`` and tear it down via ``_init_worker(None)`` afterwards —
    so a nested sweep (e.g. one running inside a sharded-sweep worker)
    would observe a foreign or torn-down spec.  The spec is now
    threaded explicitly and the global belongs to pool workers only."""

    def test_serial_path_leaves_global_untouched(self):
        sentinel = object()
        with mock.patch.object(parallel_mod, "_SPEC", sentinel):
            result = run_sweep_parallel(
                {"SEQ": SequentialScheduler(), "FIX-2": FixedScheduler(2)},
                _workload(),
                [40.0, 80.0],
                cores=4,
                num_requests=40,
                workers=1,
            )
            assert parallel_mod._SPEC is sentinel
        assert result.policies() == ["SEQ", "FIX-2"]

    def test_run_cell_takes_spec_explicitly(self):
        # The serial path must be callable with no global at all.
        assert parallel_mod._SPEC is None
        spec = parallel_mod._SweepSpec(
            named=[("SEQ", SequentialScheduler())],
            workload=_workload(),
            rps_values=[60.0],
            cores=4,
            num_requests=30,
            quantum_ms=5.0,
            seed=7,
            phi=0.99,
            keep_results=False,
            spin_fraction=0.25,
        )
        tail, mean, histogram, result = parallel_mod._run_cell((0, 0, 0), spec)
        assert parallel_mod._SPEC is None
        assert histogram.count == 30
        assert tail >= mean > 0.0
        assert result is None


class TestAmbientWorkerResolution:
    """``workers=0`` ("all CPUs") must be stored raw and resolved
    against ``os.cpu_count()`` at *use* time, not frozen to the CPU
    count of whatever machine happened to call ``set_default_workers``."""

    def test_zero_is_stored_raw(self):
        with default_workers(0):
            assert get_default_workers() == 0

    def test_zero_resolves_at_use_time(self):
        with default_workers(0):
            with mock.patch.object(os, "cpu_count", return_value=7):
                assert resolve_workers(None) == 7
            with mock.patch.object(os, "cpu_count", return_value=3):
                assert resolve_workers(None) == 3

    def test_explicit_zero_resolves_at_use_time(self):
        with mock.patch.object(os, "cpu_count", return_value=5):
            assert resolve_workers(0) == 5

    def test_cpu_count_none_falls_back_to_one(self):
        with mock.patch.object(os, "cpu_count", return_value=None):
            assert resolve_workers(0) == 1

    def test_nested_context_restores_raw_sentinel(self):
        with default_workers(0):
            with default_workers(4):
                assert get_default_workers() == 4
            assert get_default_workers() == 0  # not a resolved CPU count

    def test_negative_rejected_everywhere(self):
        with pytest.raises(ConfigurationError):
            set_default_workers(-1)
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)
