"""Sharded sweep orchestration (DESIGN.md §14): ``workers`` must be a
pure wall-clock knob (bit-identical merges for any worker count),
``shards=1`` must equal a plain streamed run, and the shard/worker
resolution machinery must keep its raw-value semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.parallel.shards as shards_mod
from repro.errors import ConfigurationError
from repro.experiments.runner import cell_seed, stream_policy
from repro.parallel import (
    default_shards,
    default_workers,
    get_default_shards,
    resolve_shards,
    run_sharded_sweep,
    set_default_shards,
    shard_sizes,
)
from repro.schedulers import FixedScheduler, SequentialScheduler
from tests.experiments.test_parallel_bugfixes import _workload

_RPS = [40.0, 80.0]


def _schedulers():
    return {"SEQ": SequentialScheduler(), "FIX-2": FixedScheduler(2)}


def _sweep(workers, shards=3, vectorized=False):
    return run_sharded_sweep(
        _schedulers(),
        _workload(),
        _RPS,
        cores=4,
        num_requests=120,
        shards=shards,
        workers=workers,
        seed=7,
        vectorized=vectorized,
    )


def _assert_sweeps_identical(a, b):
    assert a.policies() == b.policies()
    assert a.rps_values == b.rps_values
    assert a.shards == b.shards
    for policy in a.policies():
        for sa, sb in zip(a[policy], b[policy]):
            assert sa.histogram.state() == sb.histogram.state()
            assert sa.as_dict() == sb.as_dict()
            assert sa.duration_ms == sb.duration_ms
            assert sa.thread_integral == sb.thread_integral
            assert sa.system_count_integral == sb.system_count_integral


class TestWorkerCountInvariance:
    def test_workers_is_not_a_results_knob(self):
        serial = _sweep(workers=1)
        _assert_sweeps_identical(serial, _sweep(workers=2))
        _assert_sweeps_identical(serial, _sweep(workers=4))

    def test_vectorized_shards_match_scalar_shards(self):
        _assert_sweeps_identical(
            _sweep(workers=1, vectorized=False), _sweep(workers=2, vectorized=True)
        )

    def test_all_requests_accounted(self):
        sweep = _sweep(workers=2)
        for policy in sweep.policies():
            for summary in sweep[policy]:
                assert summary.count + summary.shed_count == 120

    def test_tail_and_mean_views(self):
        sweep = _sweep(workers=1)
        points = sweep.tail_points("SEQ")
        assert [rps for rps, _ in points] == _RPS
        assert all(tail > 0 for _, tail in points)
        assert all(
            mean <= tail
            for (_, mean), (_, tail) in zip(sweep.mean_points("SEQ"), points)
        )


class TestShardSemantics:
    def test_one_shard_is_a_plain_streamed_run(self):
        sweep = _sweep(workers=1, shards=1)
        for rps_index, rps in enumerate(_RPS):
            direct = stream_policy(
                SequentialScheduler(),
                _workload(),
                rps=rps,
                cores=4,
                num_requests=120,
                seed=cell_seed(7, rps_index, 0),
            )
            assert sweep["SEQ"][rps_index].histogram.state() == direct.histogram.state()
            assert sweep["SEQ"][rps_index].as_dict() == direct.as_dict()

    def test_shard_seeds_are_policy_independent(self):
        """Every policy replays the same shard traces (the paired
        comparison discipline): total trace durations match exactly."""
        sweep = _sweep(workers=1)
        # Shard traces are policy-independent; completed counts are a
        # trace property under non-shedding policies.
        for a, b in zip(sweep["SEQ"], sweep["FIX-2"]):
            assert a.count == b.count

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one scheduler"):
            run_sharded_sweep({}, _workload(), _RPS, cores=4, num_requests=10)
        with pytest.raises(ConfigurationError, match="at least one rps"):
            run_sharded_sweep(
                _schedulers(), _workload(), [], cores=4, num_requests=10
            )

    def test_serial_path_leaves_worker_global_untouched(self):
        from unittest import mock

        sentinel = object()
        with mock.patch.object(shards_mod, "_SPEC", sentinel):
            _sweep(workers=1)
            assert shards_mod._SPEC is sentinel


class TestShardSizes:
    def test_exact_split(self):
        assert shard_sizes(120, 3) == [40, 40, 40]

    def test_remainder_goes_to_first_shards(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(0, 1)
        with pytest.raises(ConfigurationError):
            shard_sizes(10, 0)
        with pytest.raises(ConfigurationError, match="non-empty"):
            shard_sizes(3, 5)

    @given(
        total=st.integers(min_value=1, max_value=10_000),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, total, shards):
        if shards > total:
            with pytest.raises(ConfigurationError):
                shard_sizes(total, shards)
            return
        sizes = shard_sizes(total, shards)
        assert sum(sizes) == total
        assert len(sizes) == shards
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)  # extras go first


class TestShardResolution:
    def test_zero_stored_raw(self):
        with default_shards(0):
            assert get_default_shards() == 0

    def test_zero_resolves_against_workers_at_use_time(self):
        assert resolve_shards(0, workers=6) == 6
        assert resolve_shards(0, workers=1) == 1
        with default_shards(0):
            assert resolve_shards(None, workers=3) == 3

    def test_nested_context_restores_raw_sentinel(self):
        with default_shards(0):
            with default_shards(5):
                assert get_default_shards() == 5
            assert get_default_shards() == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            set_default_shards(-1)
        with pytest.raises(ConfigurationError):
            resolve_shards(-2, workers=1)

    def test_shards_zero_follows_workers_in_sweep(self):
        with default_workers(1):
            sweep = run_sharded_sweep(
                {"SEQ": SequentialScheduler()},
                _workload(),
                [50.0],
                cores=4,
                num_requests=30,
                shards=0,
            )
        assert sweep.shards == 1


class TestCliShardsFlag:
    def test_flag_parses_with_default_one(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["mega-sweep"])
        assert args.shards == 1
        args = build_parser().parse_args(["mega-sweep", "--shards", "4"])
        assert args.shards == 4
