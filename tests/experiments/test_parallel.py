"""Serial/parallel sweep equivalence: ``--workers`` must be a pure
wall-clock knob.  For any fixed seed the parallel runner has to produce
the same per-load-point tails, means, p50/p99, and merged latency
histograms as the serial loop — bucket for bucket."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.experiments.runner import cell_seed, latency_histogram, run_sweep
from repro.parallel import (
    default_workers,
    get_default_workers,
    resolve_workers,
    run_sweep_parallel,
    set_default_workers,
)
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.schedulers import FixedScheduler, SequentialScheduler
from repro.workloads.synthetic import DemandDistribution
from repro.workloads.workload import Workload


def _workload():
    return Workload(
        name="parallel-test",
        sampler=DemandDistribution([(1.0, 3.0, 0.6)], floor_ms=1.0),
        speedup_model=UniformSpeedupModel(TabulatedSpeedup([1.0, 1.8, 2.4, 2.9])),
        max_degree=4,
    )


def _schedulers():
    return {"SEQ": SequentialScheduler(), "FIX-2": FixedScheduler(2)}


def _assert_sweeps_identical(serial, parallel):
    assert serial.policies() == parallel.policies()
    for name in serial.policies():
        ours, theirs = serial[name], parallel[name]
        assert ours.rps_values == theirs.rps_values
        assert ours.tail_ms == theirs.tail_ms  # raw float equality
        assert ours.mean_ms == theirs.mean_ms
        assert len(ours.histograms) == len(theirs.histograms)
        for hs, hp in zip(ours.histograms, theirs.histograms):
            assert hs.count == hp.count
            assert hs.sum == hp.sum
            assert hs._buckets == hp._buckets  # identical merged buckets
            assert hs.percentile(0.50) == hp.percentile(0.50)
            assert hs.percentile(0.99) == hp.percentile(0.99)


class TestSerialParallelEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        repeats=st.integers(min_value=1, max_value=2),
        rps_values=st.lists(
            st.sampled_from([20.0, 60.0, 120.0]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
    )
    def test_property_in_process_path(self, seed, repeats, rps_values):
        """The cell-based runner (exercised in-process at workers=1)
        must reproduce the serial loop for arbitrary sweep shapes."""
        kwargs = dict(
            num_requests=60,
            cores=4,
            seed=seed,
            repeats=repeats,
        )
        serial = run_sweep(_schedulers(), _workload(), rps_values, **kwargs)
        parallel = run_sweep_parallel(
            _schedulers(), _workload(), rps_values, workers=1, **kwargs
        )
        _assert_sweeps_identical(serial, parallel)

    def test_multiprocess_pool_matches_serial(self):
        """The real pool: identical results with workers=2."""
        kwargs = dict(num_requests=150, cores=4, seed=1234, repeats=2)
        rps_values = [40.0, 100.0]
        serial = run_sweep(_schedulers(), _workload(), rps_values, **kwargs)
        parallel = run_sweep_parallel(
            _schedulers(), _workload(), rps_values, workers=2, **kwargs
        )
        _assert_sweeps_identical(serial, parallel)

    def test_keep_results_round_trips_records(self):
        kwargs = dict(num_requests=40, cores=4, seed=7, repeats=1, keep_results=True)
        serial = run_sweep(_schedulers(), _workload(), [50.0], **kwargs)
        parallel = run_sweep_parallel(
            _schedulers(), _workload(), [50.0], workers=2, **kwargs
        )
        for name in serial.policies():
            for kept_s, kept_p in zip(serial[name].results, parallel[name].results):
                assert [r.finish_ms for res in kept_s for r in res.records] == [
                    r.finish_ms for res in kept_p for r in res.records
                ]

    def test_run_sweep_workers_kwarg_delegates(self):
        kwargs = dict(num_requests=60, cores=4, seed=3, repeats=1)
        serial = run_sweep(_schedulers(), _workload(), [30.0], **kwargs)
        delegated = run_sweep(
            _schedulers(), _workload(), [30.0], workers=2, **kwargs
        )
        _assert_sweeps_identical(serial, delegated)


class TestHistogramMergePath:
    def test_point_histogram_merges_repeats(self):
        sweep = run_sweep(
            _schedulers(),
            _workload(),
            [40.0],
            cores=4,
            num_requests=30,
            seed=11,
            repeats=3,
        )
        series = sweep["SEQ"]
        assert len(series.histograms) == 1
        assert series.histograms[0].count == 3 * 30

    def test_latency_histogram_counts_completions(self):
        from repro.experiments.runner import run_policy

        result = run_policy(
            SequentialScheduler(), _workload(), rps=40.0, cores=4, num_requests=25
        )
        histogram = latency_histogram(result)
        assert histogram.count == len(result.records)
        assert histogram.percentile(0.99) <= max(r.latency_ms for r in result.records)


class TestWorkerConfiguration:
    def test_cell_seed_is_policy_independent(self):
        assert cell_seed(42, 0, 0) == 42
        assert cell_seed(42, 1, 0) == 42 + 7919
        assert cell_seed(42, 0, 1) == 42 + 104729
        # distinct cells -> distinct seeds within a realistic grid
        seeds = {cell_seed(42, i, r) for i in range(12) for r in range(5)}
        assert len(seeds) == 60

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # all CPUs
        assert resolve_workers(None) == get_default_workers()
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)

    def test_default_workers_context(self):
        baseline = get_default_workers()
        with default_workers(4) as workers:
            assert workers == 4
            assert get_default_workers() == 4
        assert get_default_workers() == baseline

    def test_set_default_workers_validates(self):
        baseline = get_default_workers()
        try:
            with pytest.raises(ConfigurationError):
                set_default_workers(-2)
        finally:
            set_default_workers(baseline)

    def test_repeats_validated(self):
        with pytest.raises(ConfigurationError):
            run_sweep_parallel(
                _schedulers(), _workload(), [30.0], cores=4, repeats=0
            )
