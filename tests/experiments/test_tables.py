"""Tests for the memoized interval tables."""

from __future__ import annotations

from repro.experiments.config import TINY
from repro.experiments.tables import bing_table, lucene_table


class TestCaching:
    def test_same_scale_returns_same_object(self):
        assert lucene_table(TINY) is lucene_table(TINY)
        assert bing_table(TINY) is bing_table(TINY)

    def test_tables_are_complete(self):
        table = lucene_table(TINY)
        assert table.admission_capacity() is not None
        assert table.metadata is not None
        assert table.metadata.target_parallelism == 24

    def test_bing_step_is_finer(self):
        """Bing demand is ~10x shorter, so the search step scales down."""
        lucene = lucene_table(TINY)
        bing = bing_table(TINY)
        assert bing.metadata.step_ms < lucene.metadata.step_ms
