"""The run-diff experiment: ledgered panels through the diff engine.

The self-diff panel must attest an exact null at ANY scale; the
FM-vs-FIX-3 significance claim is a quick-scale-and-up fact (tiny's
150 requests lack the power) so here we only check the panels exist
and the entries are offered for ledgering.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import TINY
from repro.experiments.run_diff import (
    COMPARE_RPS,
    FIX_DEGREE,
    LOAD_POINTS,
    experiment_run_diff,
)


@pytest.fixture(scope="module")
def result():
    return experiment_run_diff(TINY)


class TestRunDiffExperiment:
    def test_offers_one_entry_per_policy_and_load(self, result):
        names = sorted(entry.card.name for entry in result.entries)
        expected = sorted(
            f"{policy}@{rps:g}"
            for policy in ("FM", f"FIX-{FIX_DEGREE}")
            for rps in LOAD_POINTS
        )
        assert names == expected

    def test_self_diff_attests_exact_null(self, result):
        assert any("NULL (exact)" in note for note in result.notes)
        self_tables = [
            t for t in result.tables if t.caption.startswith("self-diff")
        ]
        assert len(self_tables) == 1
        assert "identical=True" in self_tables[0].caption
        # Every quantile row reports a zero delta and no significance.
        for row in self_tables[0].rows:
            assert row[3] == "+0"
            assert row[-1] == "no"

    def test_versus_and_regression_panels_present(self, result):
        titles = [t.caption for t in result.tables]
        assert any(
            f"FM vs FIX-{FIX_DEGREE} at {COMPARE_RPS:g}" in t for t in titles
        )
        assert any("FM regression" in t for t in titles)
        # The FIX-contention framing note rides along (DESIGN.md §15).
        assert any("processor-sharing contention" in n for n in result.notes)

    def test_entries_are_renderable(self, result):
        text = result.render()
        assert "self-diff" in text
        assert "explanation ranking" in text
