"""Tests for the benchmark-output summary collator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import FigureResult
from repro.experiments.summary import collect, main, parse_output, render_summary


def _rendered(figure_id: str = "figX") -> str:
    result = FigureResult(figure_id, "A demo figure")
    result.add_table("panel", ["x", "y"], [[1, 2.5], [3, 4.0]])
    result.add_note("a note")
    return result.render()


class TestParse:
    def test_roundtrip_from_figure_result(self):
        output = parse_output(_rendered())
        assert output.experiment_id == "figX"
        assert output.title == "A demo figure"
        assert "panel" in output.body
        assert output.notes == ("a note",)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_output("hello world")


class TestCollect:
    def test_collects_sorted(self, tmp_path):
        (tmp_path / "b.txt").write_text(_rendered("figB"))
        (tmp_path / "a.txt").write_text(_rendered("figA"))
        outputs = collect(tmp_path)
        assert [o.experiment_id for o in outputs] == ["figA", "figB"]

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect(tmp_path)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect(tmp_path / "nope")


class TestRender:
    def test_summary_contains_everything(self, tmp_path):
        (tmp_path / "a.txt").write_text(_rendered("figA"))
        text = render_summary(collect(tmp_path))
        assert "# Benchmark session summary" in text
        assert "## figA — A demo figure" in text
        assert "- a note" in text

    def test_main(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text(_rendered("figA"))
        assert main([str(tmp_path)]) == 0
        assert "figA" in capsys.readouterr().out
