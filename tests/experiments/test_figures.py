"""Smoke tests: every paper experiment runs end-to-end at TINY scale
and produces the expected panels, plus spot checks of the headline
orderings that must hold even at small scale."""

from __future__ import annotations

import pytest

from repro.experiments.config import TINY, Scale, default_scale
from repro.experiments.ablations import ABLATIONS
from repro.experiments.extensions import EXTENSIONS
from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    fig1_bing_workload,
    fig2_lucene_workload,
    fig5_example_table,
    theorem1_check,
)
from repro.errors import ConfigurationError


class TestScaleConfig:
    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert default_scale().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigurationError):
            default_scale()

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            Scale("bad", num_requests=1, profile_size=10, num_bins=None, step_ms=5.0)


class TestWorkloadFigures:
    def test_fig1_panels(self):
        result = fig1_bing_workload(TINY)
        captions = [t.caption for t in result.tables]
        assert any("histogram" in c for c in captions)
        assert any("speedup" in c for c in captions)

    def test_fig2_panels(self):
        result = fig2_lucene_workload(TINY)
        assert len(result.tables) == 3
        assert result.notes


class TestFig5:
    def test_structure_matches_paper(self):
        result = fig5_example_table()
        rows = result.tables[0].rows
        # Low load: immediate degree 3; capacity row is e1.
        assert "d3" in rows[0][1]
        assert rows[-1][1].startswith("e1")


class TestTheorem1:
    def test_few_to_many_is_minimal(self):
        result = theorem1_check(TINY)
        rows = result.tables[0].rows
        fm_usage = rows[0][1]
        assert rows[0][0] == "few-to-many"
        assert all(fm_usage <= usage + 1e-9 for _, usage, _, _ in rows)
        # processing time identical for all orderings
        times = [t for _, _, t, _ in rows]
        assert max(times) - min(times) < 1e-6


@pytest.mark.slow
class TestAllExperimentsSmoke:
    @pytest.mark.parametrize(
        "name", sorted({**ALL_EXPERIMENTS, **ABLATIONS, **EXTENSIONS})
    )
    def test_runs_and_renders(self, name):
        experiments = {**ALL_EXPERIMENTS, **ABLATIONS, **EXTENSIONS}
        result = experiments[name](TINY)
        text = result.render()
        assert result.figure_id
        assert result.tables
        assert len(text) > 50
